//! Static type constraints and single-valued labels, layered *on top of*
//! C-logic (§2.3, §6).
//!
//! C-logic deliberately builds in only the dynamic notion of types; the
//! static notion — "a type indicates a set of properties which must be
//! possessed by objects of that type" — and functionality of labels are
//! constraints over database states, "better treated with schema
//! information". This module provides exactly that optional layer:
//!
//! * a [`Schema`] declares, per type, required labelled properties (with
//!   the value's type), and declares labels as functional (single-valued);
//! * [`Schema::membership_rule`] realizes the paper's static-type reading
//!   `τ(X) :- X[l1 ⇒ X1, …, ln ⇒ Xn], τ1(X1), …` as an ordinary C-logic
//!   rule — every object with all the properties automatically belongs to
//!   the type;
//! * [`Schema::check`] audits a set of derived ground facts and reports
//!   violations, leaving the logic itself unconstrained (consistency in
//!   C-logic is never global, unlike O-logic).

use crate::fol::{FoAtom, FoTerm};
use crate::formula::{Atomic, DefiniteClause};
use crate::hierarchy::object_type;
use crate::program::Signature;
use crate::symbol::Symbol;
use crate::term::{LabelSpec, Term};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fmt;

/// A property requirement: objects of the type must have `label` with at
/// least one value of type `value_type`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Requirement {
    /// The required label.
    pub label: Symbol,
    /// The required type of the value (`object` for "any").
    pub value_type: Symbol,
}

/// A database schema: static types plus label functionality declarations.
#[derive(Clone, Debug, Default)]
pub struct Schema {
    required: BTreeMap<Symbol, Vec<Requirement>>,
    functional: BTreeSet<Symbol>,
}

/// A constraint violation found by [`Schema::check`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Violation {
    /// An object of `ty` lacks any `label` value of type `value_type`.
    MissingProperty {
        /// The offending object (display form of its identity).
        object: String,
        /// The constrained type.
        ty: Symbol,
        /// The missing label.
        label: Symbol,
        /// The required value type.
        value_type: Symbol,
    },
    /// A functional label has two distinct values on one object.
    MultipleValues {
        /// The offending object.
        object: String,
        /// The functional label.
        label: Symbol,
        /// The distinct values found (display forms, sorted).
        values: Vec<String>,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::MissingProperty {
                object,
                ty,
                label,
                value_type,
            } => write!(
                f,
                "object {object} of type {ty} lacks required {label} of type {value_type}"
            ),
            Violation::MultipleValues {
                object,
                label,
                values,
            } => {
                write!(
                    f,
                    "functional label {label} has multiple values on {object}: {values:?}"
                )
            }
        }
    }
}

impl Schema {
    /// An empty schema (no constraints).
    pub fn new() -> Schema {
        Schema::default()
    }

    /// Declares that objects of `ty` must carry `label` with a value of
    /// type `value_type`.
    pub fn require(
        &mut self,
        ty: impl Into<Symbol>,
        label: impl Into<Symbol>,
        value_type: impl Into<Symbol>,
    ) {
        self.required
            .entry(ty.into())
            .or_default()
            .push(Requirement {
                label: label.into(),
                value_type: value_type.into(),
            });
    }

    /// Declares `label` single-valued.
    pub fn declare_functional(&mut self, label: impl Into<Symbol>) {
        self.functional.insert(label.into());
    }

    /// Whether `label` was declared functional.
    pub fn is_functional(&self, label: Symbol) -> bool {
        self.functional.contains(&label)
    }

    /// The requirements for `ty`, if any.
    pub fn requirements(&self, ty: Symbol) -> &[Requirement] {
        self.required.get(&ty).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Types with at least one requirement.
    pub fn constrained_types(&self) -> impl Iterator<Item = Symbol> + '_ {
        self.required.keys().copied()
    }

    /// The static-type membership rule for `ty` (§2.3):
    ///
    /// ```text
    /// ty: X :- object: X[l1 ⇒ X1, …, ln ⇒ Xn], τ1(X1), …, τn(Xn).
    /// ```
    ///
    /// Adding these rules to a program makes every object possessing all
    /// the properties automatically a member of the type. Returns `None`
    /// when `ty` has no requirements.
    pub fn membership_rule(&self, ty: Symbol) -> Option<DefiniteClause> {
        let reqs = self.required.get(&ty)?;
        let head = Atomic::term(Term::typed_var(ty, "X"));
        let mut specs = Vec::with_capacity(reqs.len());
        let mut typing = Vec::new();
        for (i, r) in reqs.iter().enumerate() {
            let vi = Symbol::new(&format!("X{}", i + 1));
            specs.push(LabelSpec::one(r.label, Term::var(vi)));
            if r.value_type != object_type() {
                typing.push(Atomic::term(Term::typed_var(r.value_type, vi)));
            }
        }
        let mut body = vec![Atomic::term(
            Term::molecule(Term::var("X"), specs).expect("id head"),
        )];
        body.extend(typing);
        Some(DefiniteClause::rule(head, body))
    }

    /// All membership rules.
    pub fn membership_rules(&self) -> Vec<DefiniteClause> {
        self.required
            .keys()
            .filter_map(|&t| self.membership_rule(t))
            .collect()
    }

    /// Audits a set of derived ground atoms (as produced by bottom-up
    /// evaluation of the translated program) against the schema.
    /// Unary atoms over `sig.types` are type membership; binary atoms over
    /// `sig.labels` are label pairs.
    pub fn check(&self, atoms: &[FoAtom], sig: &Signature) -> Vec<Violation> {
        let mut members: HashMap<Symbol, HashSet<&FoTerm>> = HashMap::new();
        let mut pairs: HashMap<Symbol, Vec<(&FoTerm, &FoTerm)>> = HashMap::new();
        for a in atoms {
            if a.arity() == 1 && sig.types.contains(&a.pred) {
                members.entry(a.pred).or_default().insert(&a.args[0]);
            } else if a.arity() == 2 && sig.labels.contains(&a.pred) {
                pairs
                    .entry(a.pred)
                    .or_default()
                    .push((&a.args[0], &a.args[1]));
            }
        }
        let mut out = Vec::new();
        // Required properties.
        for (&ty, reqs) in &self.required {
            let Some(objs) = members.get(&ty) else {
                continue;
            };
            for &obj in objs {
                for r in reqs {
                    let has = pairs.get(&r.label).is_some_and(|ps| {
                        ps.iter().any(|(s, v)| {
                            *s == obj
                                && (r.value_type == object_type()
                                    || members.get(&r.value_type).is_some_and(|m| m.contains(v)))
                        })
                    });
                    if !has {
                        out.push(Violation::MissingProperty {
                            object: obj.to_string(),
                            ty,
                            label: r.label,
                            value_type: r.value_type,
                        });
                    }
                }
            }
        }
        // Functional labels.
        for &l in &self.functional {
            let Some(ps) = pairs.get(&l) else { continue };
            let mut by_subject: HashMap<&FoTerm, BTreeSet<String>> = HashMap::new();
            for (s, v) in ps {
                by_subject.entry(s).or_default().insert(v.to_string());
            }
            for (s, vs) in by_subject {
                if vs.len() > 1 {
                    out.push(Violation::MultipleValues {
                        object: s.to_string(),
                        label: l,
                        values: vs.into_iter().collect(),
                    });
                }
            }
        }
        out.sort_by_key(|v| format!("{v:?}"));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::Program;
    use crate::symbol::sym;

    fn sig_with(types: &[&str], labels: &[&str]) -> Signature {
        let mut p = Program::new();
        for &t in types {
            p.push_fact(Atomic::term(Term::typed_constant(t, "dummy")));
        }
        let mut sig = p.signature();
        for &l in labels {
            sig.labels.insert(sym(l));
        }
        sig
    }

    #[test]
    fn membership_rule_shape() {
        let mut s = Schema::new();
        s.require("person", "name", "string");
        s.require("person", "age", "object");
        let r = s.membership_rule(sym("person")).unwrap();
        assert_eq!(
            r.to_string(),
            "person: X :- X[name => X1, age => X2], string: X1."
        );
        assert!(s.membership_rule(sym("robot")).is_none());
        assert_eq!(s.membership_rules().len(), 1);
    }

    #[test]
    fn check_missing_property() {
        let mut s = Schema::new();
        s.require("person", "name", "object");
        let sig = sig_with(&["person"], &["name"]);
        let atoms = vec![
            FoAtom::new("person", vec![FoTerm::constant("john")]),
            FoAtom::new("person", vec![FoTerm::constant("bob")]),
            FoAtom::new(
                "name",
                vec![FoTerm::constant("john"), FoTerm::constant("j")],
            ),
        ];
        let vs = s.check(&atoms, &sig);
        assert_eq!(vs.len(), 1);
        match &vs[0] {
            Violation::MissingProperty {
                object, ty, label, ..
            } => {
                assert_eq!(object, "bob");
                assert_eq!(*ty, sym("person"));
                assert_eq!(*label, sym("name"));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn check_value_type() {
        let mut s = Schema::new();
        s.require("person", "spouse", "person");
        let sig = sig_with(&["person"], &["spouse"]);
        // john's spouse is not typed person ⇒ requirement unmet.
        let atoms = vec![
            FoAtom::new("person", vec![FoTerm::constant("john")]),
            FoAtom::new(
                "spouse",
                vec![FoTerm::constant("john"), FoTerm::constant("mary")],
            ),
        ];
        assert_eq!(s.check(&atoms, &sig).len(), 1);
        // Once mary is a person too, john's requirement is met — the only
        // remaining violation is mary's own missing spouse.
        let atoms2 = [
            atoms,
            vec![FoAtom::new("person", vec![FoTerm::constant("mary")])],
        ]
        .concat();
        let vs = s.check(&atoms2, &sig);
        assert_eq!(vs.len(), 1);
        assert!(matches!(&vs[0],
            Violation::MissingProperty { object, .. } if object == "mary"));
    }

    #[test]
    fn check_functional_label() {
        let mut s = Schema::new();
        s.declare_functional("name");
        assert!(s.is_functional(sym("name")));
        let sig = sig_with(&[], &["name"]);
        let atoms = vec![
            FoAtom::new(
                "name",
                vec![FoTerm::constant("john"), FoTerm::constant("j1")],
            ),
            FoAtom::new(
                "name",
                vec![FoTerm::constant("john"), FoTerm::constant("j2")],
            ),
            FoAtom::new("name", vec![FoTerm::constant("bob"), FoTerm::constant("b")]),
        ];
        let vs = s.check(&atoms, &sig);
        assert_eq!(vs.len(), 1);
        match &vs[0] {
            Violation::MultipleValues { object, values, .. } => {
                assert_eq!(object, "john");
                assert_eq!(values, &["j1".to_string(), "j2".to_string()]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn multi_valued_labels_pass_without_declaration() {
        // The paper's stance: multi-valued labels have no built-in
        // functionality constraint; only declared-functional labels are
        // audited.
        let s = Schema::new();
        let sig = sig_with(&[], &["children"]);
        let atoms = vec![
            FoAtom::new(
                "children",
                vec![FoTerm::constant("john"), FoTerm::constant("bob")],
            ),
            FoAtom::new(
                "children",
                vec![FoTerm::constant("john"), FoTerm::constant("bill")],
            ),
        ];
        assert!(s.check(&atoms, &sig).is_empty());
    }

    #[test]
    fn violation_display() {
        let v = Violation::MissingProperty {
            object: "bob".into(),
            ty: sym("person"),
            label: sym("name"),
            value_type: object_type(),
        };
        assert!(v.to_string().contains("bob"));
        let w = Violation::MultipleValues {
            object: "john".into(),
            label: sym("name"),
            values: vec!["a".into(), "b".into()],
        };
        assert!(w.to_string().contains("name"));
    }

    #[test]
    fn constrained_types_lists_declarations() {
        let mut s = Schema::new();
        s.require("person", "name", "object");
        s.require("course", "credits", "object");
        let ts: Vec<Symbol> = s.constrained_types().collect();
        assert_eq!(ts, vec![sym("course"), sym("person")]);
        assert_eq!(s.requirements(sym("person")).len(), 1);
        assert!(s.requirements(sym("robot")).is_empty());
    }
}
