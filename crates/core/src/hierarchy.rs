//! The type hierarchy of a language of objects.
//!
//! C-logic assumes a countable, partially ordered set of type symbols with
//! a greatest element `object`: for every type `t`, `t ≤ object` (§3.1).
//! Types are *dynamic* (§2.3): semantically each type is just a unary
//! predicate, and the only constraint a structure must respect is
//! monotonicity — if `t1 ≤ t2` then `I(t1) ⊆ I(t2)`.
//!
//! A [`TypeHierarchy`] is built from subtype declarations `t1 < t2` (§4).
//! The declared edges generate the partial order by reflexive–transitive
//! closure. Declaration cycles (`a < b`, `b < a`) are tolerated: the
//! members of a cycle become order-equivalent (each ≤ the other), which is
//! the natural preorder reading; [`TypeHierarchy::is_partial_order`]
//! reports whether the declared graph is acyclic, for callers that want to
//! reject such programs.

use crate::symbol::Symbol;
use std::collections::{HashMap, HashSet, VecDeque};

/// Name of the distinguished greatest type.
pub const OBJECT_TYPE: &str = "object";

/// Returns the interned symbol for the top type `object`.
pub fn object_type() -> Symbol {
    Symbol::new(OBJECT_TYPE)
}

/// A finite, explicitly declared type hierarchy.
///
/// Only finitely many type symbols occur in a program (§4), so the
/// hierarchy stores exactly the declared symbols plus `object`; any symbol
/// not registered is still ≤ `object` by convention, mirroring the paper's
/// "only assumption we actually need".
#[derive(Clone, Debug, Default)]
pub struct TypeHierarchy {
    /// Direct declared supertypes: `t1 < t2` puts `t2` in `up[t1]`.
    up: HashMap<Symbol, HashSet<Symbol>>,
    /// All symbols ever mentioned in a declaration (either side).
    mentioned: HashSet<Symbol>,
}

impl TypeHierarchy {
    /// An empty hierarchy: only the implicit `t ≤ object` ordering holds.
    pub fn new() -> Self {
        TypeHierarchy::default()
    }

    /// Records the subtype declaration `sub < sup`.
    ///
    /// Declaring `t < object` is permitted and redundant. Self-loops
    /// `t < t` are permitted and redundant (the order is reflexive).
    pub fn declare(&mut self, sub: Symbol, sup: Symbol) {
        self.mentioned.insert(sub);
        self.mentioned.insert(sup);
        self.up.entry(sub).or_default().insert(sup);
    }

    /// Every type symbol mentioned in some declaration. Does not include
    /// `object` unless it was explicitly declared.
    pub fn mentioned_types(&self) -> impl Iterator<Item = Symbol> + '_ {
        self.mentioned.iter().copied()
    }

    /// Number of declared edges.
    pub fn edge_count(&self) -> usize {
        self.up.values().map(|s| s.len()).sum()
    }

    /// Direct declared supertypes of `t` (not reflexive, not transitive).
    pub fn direct_supertypes(&self, t: Symbol) -> impl Iterator<Item = Symbol> + '_ {
        self.up.get(&t).into_iter().flatten().copied()
    }

    /// Direct declared subtypes of `t` (inverse of [`Self::direct_supertypes`]).
    pub fn direct_subtypes(&self, t: Symbol) -> Vec<Symbol> {
        self.up
            .iter()
            .filter(|(_, sups)| sups.contains(&t))
            .map(|(&sub, _)| sub)
            .collect()
    }

    /// Tests `sub ≤ sup` in the generated partial order: reflexivity,
    /// the implicit top `object`, or a declared path from `sub` to `sup`.
    pub fn is_subtype(&self, sub: Symbol, sup: Symbol) -> bool {
        if sub == sup || sup == object_type() {
            return true;
        }
        // BFS over declared edges.
        let mut seen: HashSet<Symbol> = HashSet::new();
        let mut queue: VecDeque<Symbol> = VecDeque::new();
        seen.insert(sub);
        queue.push_back(sub);
        while let Some(t) = queue.pop_front() {
            for s in self.direct_supertypes(t) {
                if s == sup {
                    return true;
                }
                if seen.insert(s) {
                    queue.push_back(s);
                }
            }
        }
        false
    }

    /// All supertypes of `t` including `t` itself and `object`.
    pub fn supertypes(&self, t: Symbol) -> HashSet<Symbol> {
        let mut seen: HashSet<Symbol> = HashSet::new();
        let mut queue: VecDeque<Symbol> = VecDeque::new();
        seen.insert(t);
        queue.push_back(t);
        while let Some(x) = queue.pop_front() {
            for s in self.direct_supertypes(x) {
                if seen.insert(s) {
                    queue.push_back(s);
                }
            }
        }
        seen.insert(object_type());
        seen
    }

    /// All subtypes of `t` including `t` itself. For `object` this returns
    /// every mentioned type plus `object` (everything is ≤ `object`).
    pub fn subtypes(&self, t: Symbol) -> HashSet<Symbol> {
        if t == object_type() {
            let mut all: HashSet<Symbol> = self.mentioned.clone();
            all.insert(t);
            return all;
        }
        let mut seen: HashSet<Symbol> = HashSet::new();
        let mut queue: VecDeque<Symbol> = VecDeque::new();
        seen.insert(t);
        queue.push_back(t);
        while let Some(x) = queue.pop_front() {
            for s in self.direct_subtypes(x) {
                if seen.insert(s) {
                    queue.push_back(s);
                }
            }
        }
        seen
    }

    /// Two types are *comparable* if one is ≤ the other. Order-sorted
    /// unification of `t1 : X` with `t2 : Y` succeeds exactly for
    /// comparable types under the dynamic-type reading, with the variable
    /// taking the more specific of the two.
    pub fn comparable(&self, t1: Symbol, t2: Symbol) -> bool {
        self.is_subtype(t1, t2) || self.is_subtype(t2, t1)
    }

    /// The more specific of two comparable types; `None` if incomparable.
    pub fn meet_of_comparable(&self, t1: Symbol, t2: Symbol) -> Option<Symbol> {
        if self.is_subtype(t1, t2) {
            Some(t1)
        } else if self.is_subtype(t2, t1) {
            Some(t2)
        } else {
            None
        }
    }

    /// Greatest lower bounds of `t1` and `t2` among mentioned types: the
    /// maximal elements of the set of common subtypes. The hierarchy is a
    /// partial order, not a lattice, so there may be zero or several.
    pub fn maximal_common_subtypes(&self, t1: Symbol, t2: Symbol) -> Vec<Symbol> {
        let s1 = self.subtypes(t1);
        let s2 = self.subtypes(t2);
        let common: Vec<Symbol> = s1.intersection(&s2).copied().collect();
        maximal_elements(&common, |a, b| self.is_subtype(a, b))
    }

    /// Least upper bounds of `t1` and `t2`: minimal elements of the set of
    /// common supertypes. Never empty — `object` is always a common
    /// supertype.
    pub fn minimal_common_supertypes(&self, t1: Symbol, t2: Symbol) -> Vec<Symbol> {
        let s1 = self.supertypes(t1);
        let s2 = self.supertypes(t2);
        let common: Vec<Symbol> = s1.intersection(&s2).copied().collect();
        minimal_elements(&common, |a, b| self.is_subtype(a, b))
    }

    /// True iff the declared graph has no cycle through two or more
    /// distinct types (self-loops are ignored: the order is reflexive
    /// anyway). When false, the generated relation is a preorder rather
    /// than a partial order.
    pub fn is_partial_order(&self) -> bool {
        // Kahn's algorithm over the declared edges, dropping self-loops.
        let nodes: Vec<Symbol> = self.mentioned.iter().copied().collect();
        let mut indegree: HashMap<Symbol, usize> = nodes.iter().map(|&n| (n, 0)).collect();
        for (&sub, sups) in &self.up {
            for &sup in sups {
                if sup != sub {
                    *indegree.entry(sup).or_insert(0) += 1;
                }
            }
        }
        let mut queue: VecDeque<Symbol> = indegree
            .iter()
            .filter(|(_, &d)| d == 0)
            .map(|(&n, _)| n)
            .collect();
        let mut removed = 0usize;
        while let Some(n) = queue.pop_front() {
            removed += 1;
            for s in self.direct_supertypes(n) {
                if s == n {
                    continue;
                }
                let d = indegree.get_mut(&s).expect("mentioned");
                *d -= 1;
                if *d == 0 {
                    queue.push_back(s);
                }
            }
        }
        removed == indegree.len()
    }

    /// The declared pairs `(sub, sup)`, in no particular order. These are
    /// exactly the pairs that the transformation turns into type axioms
    /// `sup(X) :- sub(X)` (§3.3).
    pub fn declared_pairs(&self) -> Vec<(Symbol, Symbol)> {
        let mut pairs: Vec<(Symbol, Symbol)> = self
            .up
            .iter()
            .flat_map(|(&sub, sups)| sups.iter().map(move |&sup| (sub, sup)))
            .collect();
        pairs.sort();
        pairs
    }
}

/// Elements of `xs` that are maximal under `le` (no *other* element is
/// strictly above them). Order-equivalent duplicates are all retained.
fn maximal_elements<F: Fn(Symbol, Symbol) -> bool>(xs: &[Symbol], le: F) -> Vec<Symbol> {
    let mut out: Vec<Symbol> = xs
        .iter()
        .copied()
        .filter(|&x| !xs.iter().any(|&y| y != x && le(x, y) && !le(y, x)))
        .collect();
    out.sort();
    out.dedup();
    out
}

/// Elements of `xs` that are minimal under `le`.
fn minimal_elements<F: Fn(Symbol, Symbol) -> bool>(xs: &[Symbol], le: F) -> Vec<Symbol> {
    let mut out: Vec<Symbol> = xs
        .iter()
        .copied()
        .filter(|&x| !xs.iter().any(|&y| y != x && le(y, x) && !le(x, y)))
        .collect();
    out.sort();
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbol::sym;

    fn h(decls: &[(&str, &str)]) -> TypeHierarchy {
        let mut th = TypeHierarchy::new();
        for &(a, b) in decls {
            th.declare(sym(a), sym(b));
        }
        th
    }

    #[test]
    fn reflexive() {
        let th = TypeHierarchy::new();
        assert!(th.is_subtype(sym("person"), sym("person")));
    }

    #[test]
    fn everything_below_object() {
        let th = TypeHierarchy::new();
        assert!(th.is_subtype(sym("never-declared"), object_type()));
        assert!(th.is_subtype(object_type(), object_type()));
    }

    #[test]
    fn object_not_below_others() {
        let th = h(&[("student", "person")]);
        assert!(!th.is_subtype(object_type(), sym("person")));
    }

    #[test]
    fn direct_declaration() {
        let th = h(&[("propernp", "noun_phrase")]);
        assert!(th.is_subtype(sym("propernp"), sym("noun_phrase")));
        assert!(!th.is_subtype(sym("noun_phrase"), sym("propernp")));
    }

    #[test]
    fn transitive() {
        let th = h(&[("phd_student", "student"), ("student", "person")]);
        assert!(th.is_subtype(sym("phd_student"), sym("person")));
        assert!(!th.is_subtype(sym("person"), sym("phd_student")));
    }

    #[test]
    fn incomparable_siblings() {
        let th = h(&[("student", "person"), ("employee", "person")]);
        assert!(!th.is_subtype(sym("student"), sym("employee")));
        assert!(!th.is_subtype(sym("employee"), sym("student")));
        assert!(!th.comparable(sym("student"), sym("employee")));
        assert!(th.comparable(sym("student"), sym("person")));
    }

    #[test]
    fn supertypes_include_self_and_object() {
        let th = h(&[("student", "person")]);
        let sups = th.supertypes(sym("student"));
        assert!(sups.contains(&sym("student")));
        assert!(sups.contains(&sym("person")));
        assert!(sups.contains(&object_type()));
        assert_eq!(sups.len(), 3);
    }

    #[test]
    fn subtypes_of_object_cover_everything() {
        let th = h(&[("student", "person"), ("employee", "person")]);
        let subs = th.subtypes(object_type());
        assert!(subs.contains(&sym("student")));
        assert!(subs.contains(&sym("employee")));
        assert!(subs.contains(&sym("person")));
        assert!(subs.contains(&object_type()));
    }

    #[test]
    fn meet_of_comparable_types() {
        let th = h(&[("student", "person")]);
        assert_eq!(
            th.meet_of_comparable(sym("student"), sym("person")),
            Some(sym("student"))
        );
        assert_eq!(
            th.meet_of_comparable(sym("person"), sym("student")),
            Some(sym("student"))
        );
        assert_eq!(
            th.meet_of_comparable(sym("person"), sym("person")),
            Some(sym("person"))
        );
        let th2 = h(&[("student", "person"), ("employee", "person")]);
        assert_eq!(
            th2.meet_of_comparable(sym("student"), sym("employee")),
            None
        );
    }

    #[test]
    fn maximal_common_subtypes_diamond() {
        // ta ≤ student, ta ≤ employee: diamond bottom.
        let th = h(&[
            ("ta", "student"),
            ("ta", "employee"),
            ("student", "person"),
            ("employee", "person"),
        ]);
        let glb = th.maximal_common_subtypes(sym("student"), sym("employee"));
        assert_eq!(glb, vec![sym("ta")]);
    }

    #[test]
    fn minimal_common_supertypes_default_to_object() {
        let th = h(&[("student", "person"), ("router", "device")]);
        let lub = th.minimal_common_supertypes(sym("student"), sym("router"));
        assert_eq!(lub, vec![object_type()]);
    }

    #[test]
    fn minimal_common_supertypes_diamond() {
        let th = h(&[
            ("ta", "student"),
            ("ta", "employee"),
            ("ra", "student"),
            ("ra", "employee"),
        ]);
        let lub = th.minimal_common_supertypes(sym("ta"), sym("ra"));
        let mut expect = vec![sym("student"), sym("employee")];
        expect.sort();
        assert_eq!(lub, expect);
    }

    #[test]
    fn cycle_detection() {
        let th = h(&[("a", "b"), ("b", "a")]);
        assert!(!th.is_partial_order());
        // The preorder reading: each ≤ the other.
        assert!(th.is_subtype(sym("a"), sym("b")));
        assert!(th.is_subtype(sym("b"), sym("a")));
        let acyclic = h(&[("a", "b"), ("b", "c")]);
        assert!(acyclic.is_partial_order());
    }

    #[test]
    fn self_loop_is_not_a_cycle() {
        let th = h(&[("a", "a"), ("a", "b")]);
        assert!(th.is_partial_order());
    }

    #[test]
    fn declared_pairs_roundtrip() {
        let th = h(&[("propernp", "noun_phrase"), ("commonnp", "noun_phrase")]);
        let mut pairs = th.declared_pairs();
        pairs.sort();
        assert_eq!(pairs.len(), 2);
        assert!(pairs.contains(&(sym("propernp"), sym("noun_phrase"))));
    }

    #[test]
    fn edge_count() {
        let th = h(&[("a", "b"), ("a", "c"), ("b", "c")]);
        assert_eq!(th.edge_count(), 3);
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use crate::symbol::Symbol;
    use proptest::prelude::*;

    fn type_pool() -> impl Strategy<Value = Symbol> {
        prop::sample::select(vec!["ta", "tb", "tc", "td", "te"]).prop_map(Symbol::new)
    }

    fn hierarchy() -> impl Strategy<Value = TypeHierarchy> {
        prop::collection::vec((type_pool(), type_pool()), 0..8).prop_map(|edges| {
            let mut h = TypeHierarchy::new();
            for (a, b) in edges {
                h.declare(a, b);
            }
            h
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        /// ≤ is reflexive and transitive on arbitrary declared graphs
        /// (a preorder; antisymmetry only when is_partial_order()).
        #[test]
        fn subtype_is_a_preorder(h in hierarchy(), a in type_pool(), b in type_pool(), c in type_pool()) {
            prop_assert!(h.is_subtype(a, a));
            if h.is_subtype(a, b) && h.is_subtype(b, c) {
                prop_assert!(h.is_subtype(a, c));
            }
        }

        /// object is the greatest element.
        #[test]
        fn object_is_top(h in hierarchy(), a in type_pool()) {
            prop_assert!(h.is_subtype(a, object_type()));
            if h.is_subtype(object_type(), a) {
                // only possible through an explicit declaration cycle
                prop_assert!(h.is_subtype(a, object_type()));
            }
        }

        /// supertypes/subtypes agree with is_subtype.
        #[test]
        fn closure_sets_agree(h in hierarchy(), a in type_pool(), b in type_pool()) {
            prop_assert_eq!(h.supertypes(a).contains(&b), h.is_subtype(a, b) || b == object_type());
            prop_assert_eq!(h.subtypes(a).contains(&b), h.is_subtype(b, a));
        }

        /// On acyclic declarations, ≤ is antisymmetric (a partial order).
        #[test]
        fn acyclic_implies_antisymmetric(h in hierarchy(), a in type_pool(), b in type_pool()) {
            if h.is_partial_order() && a != b {
                prop_assert!(!(h.is_subtype(a, b) && h.is_subtype(b, a)));
            }
        }

        /// Minimal common supertypes are common, minimal, and non-empty.
        #[test]
        fn lub_properties(h in hierarchy(), a in type_pool(), b in type_pool()) {
            let lubs = h.minimal_common_supertypes(a, b);
            prop_assert!(!lubs.is_empty());
            for &l in &lubs {
                prop_assert!(h.is_subtype(a, l));
                prop_assert!(h.is_subtype(b, l));
            }
        }
    }
}
