//! Semantic structures and the satisfaction relation (§3.2).
//!
//! A semantic structure `M = (M, I)` assigns to each n-ary function symbol
//! a function `Mⁿ → M`, to each predicate a relation, to each label a
//! *binary* relation (labels are possibly multi-valued), and to each type
//! a subset of `M`, monotone along the type order.
//!
//! A term denotes an element via the extension `s̄` of a variable
//! assignment, and is *satisfied* when the denoted object has the asserted
//! type and all listed labelled values — the paper's "a term will have two
//! meanings".
//!
//! This module implements finite structures with *partial* function
//! interpretations: evaluating a term whose function entry is missing
//! yields no denotation and the enclosing atomic formula is unsatisfied.
//! Total structures are the special case where every entry is present;
//! partiality is what lets Herbrand-style structures built from a finite
//! set of derived facts ([`Structure::from_ground_atoms`]) be queried
//! directly, and is documented behaviour rather than an approximation:
//! over the fragment the paper's programs use (clauses whose terms are
//! built from occurring constants), the two notions agree.

use crate::fol::{FoAtom, FoTerm};
use crate::formula::{Atomic, DefiniteClause, Formula, Query};
use crate::hierarchy::{object_type, TypeHierarchy};
use crate::program::{Program, Signature};
use crate::symbol::Symbol;
use crate::term::{Const, IdTerm, Term};
use std::collections::{HashMap, HashSet};
use std::fmt;

/// A domain element of a finite structure.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Elem(pub u32);

/// A variable assignment `s : V → M`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Assignment {
    map: HashMap<Symbol, Elem>,
}

impl Assignment {
    /// The empty assignment.
    pub fn new() -> Assignment {
        Assignment::default()
    }

    /// Binds `var` to `e`, returning the previous binding if any.
    pub fn bind(&mut self, var: impl Into<Symbol>, e: Elem) -> Option<Elem> {
        self.map.insert(var.into(), e)
    }

    /// Looks up a variable.
    pub fn get(&self, var: Symbol) -> Option<Elem> {
        self.map.get(&var).copied()
    }
}

/// A finite semantic structure for a language of objects.
#[derive(Clone, Debug, Default)]
pub struct Structure {
    /// Display names of domain elements, indexed by `Elem`.
    elem_names: Vec<String>,
    /// Interpretation of constants.
    constants: HashMap<Const, Elem>,
    /// Interpretation of function symbols (partial maps).
    functions: HashMap<Symbol, HashMap<Vec<Elem>, Elem>>,
    /// Interpretation of predicate symbols.
    predicates: HashMap<Symbol, HashSet<Vec<Elem>>>,
    /// Interpretation of labels (binary relations).
    labels: HashMap<Symbol, HashSet<(Elem, Elem)>>,
    /// Interpretation of type symbols (unary relations).
    types: HashMap<Symbol, HashSet<Elem>>,
}

impl Structure {
    /// An empty structure (empty domain).
    pub fn new() -> Structure {
        Structure::default()
    }

    /// Adds a fresh domain element with a display name.
    pub fn add_elem(&mut self, name: impl Into<String>) -> Elem {
        let e = Elem(self.elem_names.len() as u32);
        self.elem_names.push(name.into());
        e
    }

    /// Domain size.
    pub fn domain_size(&self) -> usize {
        self.elem_names.len()
    }

    /// Iterates over all domain elements.
    pub fn domain(&self) -> impl Iterator<Item = Elem> {
        (0..self.elem_names.len() as u32).map(Elem)
    }

    /// The display name of an element.
    pub fn elem_name(&self, e: Elem) -> &str {
        &self.elem_names[e.0 as usize]
    }

    /// Interprets a constant.
    pub fn set_constant(&mut self, c: Const, e: Elem) {
        self.constants.insert(c, e);
    }

    /// Convenience: adds an element named after a symbolic constant and
    /// interprets the constant as it.
    pub fn add_named_constant(&mut self, name: impl Into<Symbol>) -> Elem {
        let s = name.into();
        let e = self.add_elem(s.as_str());
        self.set_constant(Const::Sym(s), e);
        e
    }

    /// Adds one entry `f(args…) = value` to a function interpretation.
    pub fn set_function_entry(&mut self, f: impl Into<Symbol>, args: Vec<Elem>, value: Elem) {
        self.functions
            .entry(f.into())
            .or_default()
            .insert(args, value);
    }

    /// Adds a tuple to a predicate interpretation.
    pub fn add_pred_tuple(&mut self, p: impl Into<Symbol>, tuple: Vec<Elem>) {
        self.predicates.entry(p.into()).or_default().insert(tuple);
    }

    /// Adds a pair to a label interpretation.
    pub fn add_label_pair(&mut self, l: impl Into<Symbol>, from: Elem, to: Elem) {
        self.labels.entry(l.into()).or_default().insert((from, to));
    }

    /// Adds an element to a type interpretation.
    pub fn add_type_member(&mut self, t: impl Into<Symbol>, e: Elem) {
        self.types.entry(t.into()).or_default().insert(e);
    }

    /// Membership test for a type.
    pub fn has_type(&self, t: Symbol, e: Elem) -> bool {
        self.types.get(&t).is_some_and(|s| s.contains(&e))
    }

    /// Checks monotonicity: for every declared `t1 ≤ t2` (and the
    /// implicit `t ≤ object`), `I(t1) ⊆ I(t2)`. A structure for `L` must
    /// pass this to be a structure in the paper's sense.
    pub fn respects(&self, h: &TypeHierarchy) -> bool {
        let obj = self.types.get(&object_type());
        for (&t, members) in &self.types {
            if t != object_type() {
                match obj {
                    Some(o) if members.is_subset(o) => {}
                    _ if members.is_empty() => {}
                    _ => return false,
                }
            }
            for sup in h.supertypes(t) {
                if sup == t || sup == object_type() {
                    continue;
                }
                let sup_members = self.types.get(&sup);
                let ok = match sup_members {
                    Some(s) => members.is_subset(s),
                    None => members.is_empty(),
                };
                if !ok {
                    return false;
                }
            }
        }
        true
    }

    /// The extension `s̄` of an assignment to terms. `None` when the term
    /// contains an unbound variable, an uninterpreted constant, or a
    /// missing function entry.
    pub fn eval_term(&self, t: &Term, s: &Assignment) -> Option<Elem> {
        self.eval_id(t.id_term(), s)
    }

    fn eval_id(&self, id: &IdTerm, s: &Assignment) -> Option<Elem> {
        match id {
            IdTerm::Var { name, .. } => s.get(*name),
            IdTerm::Const { c, .. } => self.constants.get(c).copied(),
            IdTerm::App { functor, args, .. } => {
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(self.eval_term(a, s)?);
                }
                self.functions.get(functor)?.get(&vals).copied()
            }
        }
    }

    /// The satisfaction relation `M ⊨ t[s]` for a term used as a formula.
    pub fn satisfies_term(&self, t: &Term, s: &Assignment) -> bool {
        match t {
            Term::Id(id) => self.satisfies_id(id, s),
            Term::Molecule { head, specs } => {
                if !self.satisfies_id(head, s) {
                    return false;
                }
                let Some(subject) = self.eval_id(head, s) else {
                    return false;
                };
                specs.iter().all(|spec| {
                    let rel = self.labels.get(&spec.label);
                    spec.value.terms().iter().all(|v| {
                        self.satisfies_term(v, s)
                            && match (rel, self.eval_term(v, s)) {
                                (Some(r), Some(ev)) => r.contains(&(subject, ev)),
                                _ => false,
                            }
                    })
                })
            }
        }
    }

    fn satisfies_id(&self, id: &IdTerm, s: &Assignment) -> bool {
        let ty = id.ty();
        let in_type = |e: Elem| self.has_type(ty, e);
        match id {
            IdTerm::Var { name, .. } => s.get(*name).is_some_and(in_type),
            IdTerm::Const { c, .. } => self.constants.get(c).copied().is_some_and(in_type),
            IdTerm::App { args, .. } => {
                self.eval_id(id, s).is_some_and(in_type)
                    && args.iter().all(|a| self.satisfies_term(a, s))
            }
        }
    }

    /// `M ⊨ α[s]` for an atomic formula.
    pub fn satisfies_atomic(&self, a: &Atomic, s: &Assignment) -> bool {
        match a {
            Atomic::Term(t) => self.satisfies_term(t, s),
            Atomic::Pred { pred, args } => {
                if !args.iter().all(|t| self.satisfies_term(t, s)) {
                    return false;
                }
                let mut tuple = Vec::with_capacity(args.len());
                for t in args {
                    match self.eval_term(t, s) {
                        Some(e) => tuple.push(e),
                        None => return false,
                    }
                }
                self.predicates
                    .get(pred)
                    .is_some_and(|r| r.contains(&tuple))
            }
        }
    }

    /// `M ⊨ φ[s]` for a general formula; quantifiers range over the
    /// (finite) domain.
    pub fn satisfies_formula(&self, f: &Formula, s: &Assignment) -> bool {
        match f {
            Formula::Atomic(a) => self.satisfies_atomic(a, s),
            Formula::Not(g) => !self.satisfies_formula(g, s),
            Formula::And(a, b) => self.satisfies_formula(a, s) && self.satisfies_formula(b, s),
            Formula::Or(a, b) => self.satisfies_formula(a, s) || self.satisfies_formula(b, s),
            Formula::Implies(a, b) => !self.satisfies_formula(a, s) || self.satisfies_formula(b, s),
            Formula::Forall(x, g) => self.domain().all(|e| {
                let mut s2 = s.clone();
                s2.bind(*x, e);
                self.satisfies_formula(g, &s2)
            }),
            Formula::Exists(x, g) => self.domain().any(|e| {
                let mut s2 = s.clone();
                s2.bind(*x, e);
                self.satisfies_formula(g, &s2)
            }),
        }
    }

    /// `M ⊨ c` for a definite clause: for every assignment of the
    /// clause's variables, body satisfaction implies head satisfaction.
    /// Exponential in the number of variables — intended for tests and
    /// small structures.
    pub fn satisfies_clause(&self, c: &DefiniteClause) -> bool {
        let vars: Vec<Symbol> = c.vars().into_iter().collect();
        self.all_assignments(&vars, &Assignment::new(), &mut |s| {
            !c.body.iter().all(|b| self.satisfies_atomic(b, s)) || self.satisfies_atomic(&c.head, s)
        })
    }

    /// `M ⊨ P`: satisfies every clause, and the declared hierarchy is
    /// respected.
    pub fn satisfies_program(&self, p: &Program) -> bool {
        self.respects(&p.hierarchy()) && p.clauses.iter().all(|c| self.satisfies_clause(c))
    }

    /// All answers to a query: assignments of the query's variables under
    /// which every goal is satisfied, reported as name → element pairs in
    /// variable order.
    pub fn answers(&self, q: &Query) -> Vec<Vec<(Symbol, Elem)>> {
        let vars: Vec<Symbol> = q.vars().into_iter().collect();
        let mut out = Vec::new();
        self.all_assignments(&vars, &Assignment::new(), &mut |s| {
            if q.goals.iter().all(|g| self.satisfies_atomic(g, s)) {
                out.push(
                    vars.iter()
                        .map(|&v| (v, s.get(v).expect("bound")))
                        .collect(),
                );
            }
            true
        });
        out
    }

    /// Folds `f` over all assignments of `vars`; stops early when `f`
    /// returns false and reports whether all calls returned true.
    fn all_assignments(
        &self,
        vars: &[Symbol],
        base: &Assignment,
        f: &mut impl FnMut(&Assignment) -> bool,
    ) -> bool {
        match vars.split_first() {
            None => f(base),
            Some((&v, rest)) => self.domain().all(|e| {
                let mut s = base.clone();
                s.bind(v, e);
                self.all_assignments(rest, &s, f)
            }),
        }
    }

    /// Builds a Herbrand-style structure from a finite set of *ground*
    /// first-order atoms (e.g. the least model computed by a bottom-up
    /// engine), classifying unary atoms over `sig.types` as type
    /// membership and binary atoms over `sig.labels` as label pairs.
    ///
    /// The domain is the set of ground terms occurring in object
    /// positions; function entries are added for every occurring compound
    /// term, making `s̄` defined exactly on the occurring terms.
    pub fn from_ground_atoms(atoms: &[FoAtom], sig: &Signature) -> Structure {
        let mut st = Structure::new();
        let mut ids: HashMap<FoTerm, Elem> = HashMap::new();
        fn intern(st: &mut Structure, ids: &mut HashMap<FoTerm, Elem>, t: &FoTerm) -> Elem {
            if let Some(&e) = ids.get(t) {
                return e;
            }
            let e = match t {
                FoTerm::Var(_) => unreachable!("ground atoms only"),
                FoTerm::Const(c) => {
                    let e = st.add_elem(t.to_string());
                    st.set_constant(*c, e);
                    e
                }
                FoTerm::App(f, args) => {
                    let arg_elems: Vec<Elem> = args.iter().map(|a| intern(st, ids, a)).collect();
                    let e = st.add_elem(t.to_string());
                    st.set_function_entry(*f, arg_elems, e);
                    e
                }
            };
            ids.insert(t.clone(), e);
            e
        }
        for a in atoms {
            let elems: Vec<Elem> = a
                .args
                .iter()
                .map(|t| intern(&mut st, &mut ids, t))
                .collect();
            if elems.len() == 1 && sig.types.contains(&a.pred) {
                st.add_type_member(a.pred, elems[0]);
            } else if elems.len() == 2 && sig.labels.contains(&a.pred) {
                st.add_label_pair(a.pred, elems[0], elems[1]);
            } else {
                st.add_pred_tuple(a.pred, elems);
            }
        }
        st
    }
}

impl fmt::Display for Structure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "domain ({}):", self.domain_size())?;
        for e in self.domain() {
            writeln!(f, "  {} = {}", e.0, self.elem_name(e))?;
        }
        let mut types: Vec<_> = self.types.iter().collect();
        types.sort_by_key(|(t, _)| *t);
        for (t, members) in types {
            let mut ms: Vec<u32> = members.iter().map(|e| e.0).collect();
            ms.sort_unstable();
            writeln!(f, "  {t} = {ms:?}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbol::sym;
    use crate::term::LabelSpec;
    use std::collections::BTreeSet;

    /// The running example: john with a name and two children.
    fn john_structure() -> (Structure, Elem, Elem, Elem) {
        let mut st = Structure::new();
        let john = st.add_named_constant("john");
        let bob = st.add_named_constant("bob");
        let bill = st.add_named_constant("bill");
        for e in [john, bob, bill] {
            st.add_type_member(object_type(), e);
        }
        st.add_type_member("person", john);
        st.add_type_member("person", bob);
        st.add_type_member("person", bill);
        st.add_label_pair("children", john, bob);
        st.add_label_pair("children", john, bill);
        (st, john, bob, bill)
    }

    #[test]
    fn typed_constant_satisfaction() {
        let (st, _, _, _) = john_structure();
        let s = Assignment::new();
        assert!(st.satisfies_term(&Term::typed_constant("person", "john"), &s));
        assert!(st.satisfies_term(&Term::constant("john"), &s));
        assert!(!st.satisfies_term(&Term::typed_constant("robot", "john"), &s));
        assert!(!st.satisfies_term(&Term::constant("nobody"), &s));
    }

    #[test]
    fn molecule_satisfaction_multi_valued() {
        let (st, _, _, _) = john_structure();
        let s = Assignment::new();
        let t = Term::molecule(
            Term::typed_constant("person", "john"),
            vec![LabelSpec::set(
                "children",
                vec![Term::constant("bob"), Term::constant("bill")],
            )],
        )
        .unwrap();
        assert!(st.satisfies_term(&t, &s));
        // a value not in the relation fails
        let bad = Term::molecule(
            Term::typed_constant("person", "john"),
            vec![LabelSpec::one("children", Term::constant("john"))],
        )
        .unwrap();
        assert!(!st.satisfies_term(&bad, &s));
    }

    #[test]
    fn decomposition_equivalence_on_structures() {
        // t[l1⇒a, l2⇒b] satisfied iff t[l1⇒a] and t[l2⇒b] are (§3.2).
        let (mut st, john, bob, _) = john_structure();
        st.add_label_pair("likes", john, bob);
        let s = Assignment::new();
        let whole = Term::molecule(
            Term::constant("john"),
            vec![
                LabelSpec::one("children", Term::constant("bob")),
                LabelSpec::one("likes", Term::constant("bob")),
            ],
        )
        .unwrap();
        let parts = crate::decompose::atoms(&whole);
        assert!(st.satisfies_term(&whole, &s));
        assert!(parts.iter().all(|p| st.satisfies_term(p, &s)));
    }

    #[test]
    fn variable_satisfaction_depends_on_assignment() {
        let (st, john, bob, _) = john_structure();
        let mut s = Assignment::new();
        s.bind("X", john);
        let t = Term::molecule(
            Term::typed_var("person", "X"),
            vec![LabelSpec::one("children", Term::constant("bob"))],
        )
        .unwrap();
        assert!(st.satisfies_term(&t, &s));
        let mut s2 = Assignment::new();
        s2.bind("X", bob);
        assert!(!st.satisfies_term(&t, &s2));
        // unbound variable: unsatisfied
        assert!(!st.satisfies_term(&t, &Assignment::new()));
    }

    #[test]
    fn function_terms_evaluate_through_entries() {
        let mut st = Structure::new();
        let a = st.add_named_constant("a");
        let b = st.add_named_constant("b");
        let pair = st.add_elem("id(a,b)");
        st.set_function_entry("id", vec![a, b], pair);
        st.add_type_member("path", pair);
        st.add_type_member(object_type(), a);
        st.add_type_member(object_type(), b);
        let s = Assignment::new();
        let t = Term::typed_app("path", "id", vec![Term::constant("a"), Term::constant("b")]);
        assert_eq!(st.eval_term(&t, &s), Some(pair));
        assert!(st.satisfies_term(&t, &s));
        // missing entry ⇒ no denotation ⇒ unsatisfied
        let u = Term::typed_app("path", "id", vec![Term::constant("b"), Term::constant("a")]);
        assert_eq!(st.eval_term(&u, &s), None);
        assert!(!st.satisfies_term(&u, &s));
    }

    #[test]
    fn predicate_satisfaction_requires_arg_satisfaction() {
        let (mut st, john, bob, _) = john_structure();
        st.add_pred_tuple("older", vec![john, bob]);
        let s = Assignment::new();
        assert!(st.satisfies_atomic(
            &Atomic::pred("older", vec![Term::constant("john"), Term::constant("bob")]),
            &s
        ));
        // argument typed wrongly ⇒ the whole atom fails
        assert!(!st.satisfies_atomic(
            &Atomic::pred(
                "older",
                vec![Term::typed_constant("robot", "john"), Term::constant("bob")]
            ),
            &s
        ));
    }

    #[test]
    fn respects_hierarchy() {
        let mut h = TypeHierarchy::new();
        h.declare(sym("student"), sym("person"));
        let mut st = Structure::new();
        let ann = st.add_named_constant("ann");
        st.add_type_member(object_type(), ann);
        st.add_type_member("student", ann);
        // student ⊄ person: violation
        assert!(!st.respects(&h));
        st.add_type_member("person", ann);
        assert!(st.respects(&h));
    }

    #[test]
    fn respects_object_top() {
        let h = TypeHierarchy::new();
        let mut st = Structure::new();
        let x = st.add_named_constant("x");
        st.add_type_member("thing", x);
        // thing ⊄ object (object empty): violation of the implicit top
        assert!(!st.respects(&h));
        st.add_type_member(object_type(), x);
        assert!(st.respects(&h));
    }

    #[test]
    fn clause_and_program_satisfaction() {
        let (st, _, _, _) = john_structure();
        let mut p = Program::new();
        // person: X :- person: X.   (trivially satisfied)
        p.push(DefiniteClause::rule(
            Atomic::term(Term::typed_var("person", "X")),
            vec![Atomic::term(Term::typed_var("person", "X"))],
        ));
        assert!(st.satisfies_program(&p));
        // parent: X :- person: X.  (unsatisfied: no parent members)
        let bad = DefiniteClause::rule(
            Atomic::term(Term::typed_var("parent", "X")),
            vec![Atomic::term(Term::typed_var("person", "X"))],
        );
        assert!(!st.satisfies_clause(&bad));
    }

    #[test]
    fn formula_quantifiers() {
        let (st, _, _, _) = john_structure();
        // ∀X person(X) — true: whole domain is typed person
        let all = Formula::forall(
            "X",
            Formula::atomic(Atomic::term(Term::typed_var("person", "X"))),
        );
        assert!(st.satisfies_formula(&all, &Assignment::new()));
        // ∃X children(john, X)
        let some = Formula::exists(
            "X",
            Formula::atomic(Atomic::term(
                Term::molecule(
                    Term::constant("john"),
                    vec![LabelSpec::one("children", Term::var("X"))],
                )
                .unwrap(),
            )),
        );
        assert!(st.satisfies_formula(&some, &Assignment::new()));
        // ¬∃X children(bob, X)
        let none = Formula::negate(Formula::exists(
            "X",
            Formula::atomic(Atomic::term(
                Term::molecule(
                    Term::constant("bob"),
                    vec![LabelSpec::one("children", Term::var("X"))],
                )
                .unwrap(),
            )),
        ));
        assert!(st.satisfies_formula(&none, &Assignment::new()));
    }

    #[test]
    fn query_answers() {
        let (st, _, bob, bill) = john_structure();
        let q = Query::new(vec![Atomic::term(
            Term::molecule(
                Term::constant("john"),
                vec![LabelSpec::one("children", Term::var("X"))],
            )
            .unwrap(),
        )]);
        let answers = st.answers(&q);
        let xs: BTreeSet<Elem> = answers.iter().map(|a| a[0].1).collect();
        assert_eq!(xs, [bob, bill].into_iter().collect());
    }

    #[test]
    fn from_ground_atoms_roundtrip() {
        // Build the translated form of john[children=>{bob,bill}] and
        // check the original C-logic description is satisfied.
        let mut p = Program::new();
        p.push_fact(Atomic::term(
            Term::molecule(
                Term::typed_constant("person", "john"),
                vec![LabelSpec::set(
                    "children",
                    vec![Term::constant("bob"), Term::constant("bill")],
                )],
            )
            .unwrap(),
        ));
        let sig = p.signature();
        let atoms = vec![
            FoAtom::new("person", vec![FoTerm::constant("john")]),
            FoAtom::new(object_type(), vec![FoTerm::constant("john")]),
            FoAtom::new(object_type(), vec![FoTerm::constant("bob")]),
            FoAtom::new(object_type(), vec![FoTerm::constant("bill")]),
            FoAtom::new(
                "children",
                vec![FoTerm::constant("john"), FoTerm::constant("bob")],
            ),
            FoAtom::new(
                "children",
                vec![FoTerm::constant("john"), FoTerm::constant("bill")],
            ),
        ];
        let st = Structure::from_ground_atoms(&atoms, &sig);
        assert!(st.satisfies_program(&p));
        assert_eq!(st.domain_size(), 3);
    }

    #[test]
    fn from_ground_atoms_compound_terms() {
        let mut p = Program::new();
        p.push_fact(Atomic::term(Term::typed_app(
            "path",
            "id",
            vec![Term::constant("a"), Term::constant("b")],
        )));
        let sig = p.signature();
        let id_ab = FoTerm::App(
            sym("id"),
            vec![FoTerm::constant("a"), FoTerm::constant("b")],
        );
        let atoms = vec![
            FoAtom::new("path", vec![id_ab.clone()]),
            FoAtom::new(object_type(), vec![FoTerm::constant("a")]),
            FoAtom::new(object_type(), vec![FoTerm::constant("b")]),
            FoAtom::new(object_type(), vec![id_ab]),
        ];
        let st = Structure::from_ground_atoms(&atoms, &sig);
        let s = Assignment::new();
        let t = Term::typed_app("path", "id", vec![Term::constant("a"), Term::constant("b")]);
        assert!(st.satisfies_term(&t, &s));
        assert!(st.satisfies_program(&p));
    }

    #[test]
    fn display_is_stable() {
        let (st, _, _, _) = john_structure();
        let shown = st.to_string();
        assert!(shown.contains("domain (3):"));
        assert!(shown.contains("person"));
    }
}
