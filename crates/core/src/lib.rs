//! # clogic-core — the C-logic formalism
//!
//! An implementation of *C-Logic of Complex Objects* (Weidong Chen and
//! David S. Warren, PODS 1989). C-logic provides direct support for the
//! fundamental features of complex objects:
//!
//! * **object identity** — identities are denoted by constants and
//!   function terms, so existential object variables in entity-creating
//!   rules can be skolemized ([`skolem`]);
//! * **multi-valued labels** — labels are binary predicates; a molecule
//!   `john[name ⇒ "John", age ⇒ 28]` decomposes into atomic descriptions
//!   and recombines ([`decompose`]);
//! * **a dynamic notion of types** — types are unary predicates ordered
//!   by subtype declarations with greatest element `object`
//!   ([`hierarchy`]).
//!
//! The crate also implements the paper's central result (Theorem 1): a
//! semantics-preserving transformation into first-order logic
//! ([`transform`]), the static redundancy-elimination rules of §4
//! ([`optimize`]), and the model-theoretic semantics over finite
//! structures ([`structure`]).

#![warn(missing_docs)]

pub mod decompose;
pub mod fol;
pub mod formula;
pub mod hierarchy;
pub mod optimize;
pub mod program;
pub mod schema;
pub mod skolem;
pub mod structure;
pub mod symbol;
pub mod term;
pub mod termination;
pub mod transform;

pub use formula::{Atomic, Clause, DefiniteClause, Formula, Literal, Query};
pub use hierarchy::{object_type, TypeHierarchy, OBJECT_TYPE};
pub use program::{Program, Signature};
pub use symbol::{sym, Symbol};
pub use term::{Const, IdTerm, LabelSpec, LabelValue, Term};
