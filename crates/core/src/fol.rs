//! The target first-order language `L'` of the transformation (§3.3).
//!
//! For a language `L` of objects, `L'` has the variables, function symbols
//! and predicate symbols of `L`, plus a binary predicate symbol for each
//! label and a unary predicate symbol for each type. We do not rename on
//! the way over — the paper assumes the symbol sets of `L` are disjoint,
//! so reusing the interned [`Symbol`]s is faithful.
//!
//! This module only defines the abstract syntax (terms, atoms, definite
//! clauses, generalized clauses, programs); evaluation lives in the
//! `folog` crate.

use crate::symbol::Symbol;
use crate::term::Const;
use std::collections::BTreeSet;
use std::fmt;

/// A first-order term.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FoTerm {
    /// A variable.
    Var(Symbol),
    /// A constant (zero-ary function, integer or string).
    Const(Const),
    /// `f(t1,…,tn)`, `n ≥ 1`.
    App(Symbol, Vec<FoTerm>),
}

impl FoTerm {
    /// A variable.
    pub fn var(name: impl Into<Symbol>) -> FoTerm {
        FoTerm::Var(name.into())
    }

    /// A symbolic constant.
    pub fn constant(c: impl Into<Symbol>) -> FoTerm {
        FoTerm::Const(Const::Sym(c.into()))
    }

    /// An integer constant.
    pub fn int(i: i64) -> FoTerm {
        FoTerm::Const(Const::Int(i))
    }

    /// `f(args…)`; lowers to a constant when `args` is empty.
    pub fn app(f: impl Into<Symbol>, args: Vec<FoTerm>) -> FoTerm {
        let f = f.into();
        if args.is_empty() {
            FoTerm::Const(Const::Sym(f))
        } else {
            FoTerm::App(f, args)
        }
    }

    /// True iff no variable occurs.
    pub fn is_ground(&self) -> bool {
        match self {
            FoTerm::Var(_) => false,
            FoTerm::Const(_) => true,
            FoTerm::App(_, args) => args.iter().all(FoTerm::is_ground),
        }
    }

    /// Collects variables into `out`.
    pub fn collect_vars(&self, out: &mut BTreeSet<Symbol>) {
        match self {
            FoTerm::Var(v) => {
                out.insert(*v);
            }
            FoTerm::Const(_) => {}
            FoTerm::App(_, args) => {
                for a in args {
                    a.collect_vars(out);
                }
            }
        }
    }

    /// Structural size (number of nodes).
    pub fn size(&self) -> usize {
        match self {
            FoTerm::Var(_) | FoTerm::Const(_) => 1,
            FoTerm::App(_, args) => 1 + args.iter().map(FoTerm::size).sum::<usize>(),
        }
    }
}

impl fmt::Display for FoTerm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FoTerm::Var(v) => write!(f, "{v}"),
            FoTerm::Const(c) => write!(f, "{c}"),
            FoTerm::App(fun, args) => {
                write!(f, "{fun}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
        }
    }
}

/// A first-order atom `p(t1,…,tn)`. Type atoms are unary, label atoms
/// binary, and original predicates keep their arity.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FoAtom {
    /// The predicate symbol.
    pub pred: Symbol,
    /// The arguments.
    pub args: Vec<FoTerm>,
}

impl FoAtom {
    /// Builds `pred(args…)`.
    pub fn new(pred: impl Into<Symbol>, args: Vec<FoTerm>) -> FoAtom {
        FoAtom {
            pred: pred.into(),
            args,
        }
    }

    /// The arity.
    pub fn arity(&self) -> usize {
        self.args.len()
    }

    /// True iff all arguments are ground.
    pub fn is_ground(&self) -> bool {
        self.args.iter().all(FoTerm::is_ground)
    }

    /// Collects variables into `out`.
    pub fn collect_vars(&self, out: &mut BTreeSet<Symbol>) {
        for a in &self.args {
            a.collect_vars(out);
        }
    }

    /// The set of variables.
    pub fn vars(&self) -> BTreeSet<Symbol> {
        let mut out = BTreeSet::new();
        self.collect_vars(&mut out);
        out
    }
}

impl fmt::Display for FoAtom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.pred)?;
        for (i, a) in self.args.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, ")")
    }
}

/// A first-order clause `head :- body, \+ neg₁, …, \+ negₘ` (a definite
/// clause when `negative_body` is empty; a *normal* clause otherwise —
/// the negation extension §4 mentions but does not develop).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct FoClause {
    /// The head atom.
    pub head: FoAtom,
    /// The positive body atoms.
    pub body: Vec<FoAtom>,
    /// Negated body atoms (negation as failure / stratified negation).
    pub negative_body: Vec<FoAtom>,
}

impl FoClause {
    /// A fact.
    pub fn fact(head: FoAtom) -> FoClause {
        FoClause {
            head,
            body: Vec::new(),
            negative_body: Vec::new(),
        }
    }

    /// A rule with a positive body.
    pub fn rule(head: FoAtom, body: Vec<FoAtom>) -> FoClause {
        FoClause {
            head,
            body,
            negative_body: Vec::new(),
        }
    }

    /// A rule with positive and negated body atoms.
    pub fn rule_with_negation(
        head: FoAtom,
        body: Vec<FoAtom>,
        negative_body: Vec<FoAtom>,
    ) -> FoClause {
        FoClause {
            head,
            body,
            negative_body,
        }
    }

    /// True iff the body (positive and negative) is empty.
    pub fn is_fact(&self) -> bool {
        self.body.is_empty() && self.negative_body.is_empty()
    }

    /// True iff the clause uses negation.
    pub fn has_negation(&self) -> bool {
        !self.negative_body.is_empty()
    }

    /// A clause is *range-restricted* when every head variable occurs in
    /// the positive body — the condition under which bottom-up evaluation
    /// produces only ground facts.
    pub fn is_range_restricted(&self) -> bool {
        let mut body_vars = BTreeSet::new();
        for b in &self.body {
            b.collect_vars(&mut body_vars);
        }
        self.head.vars().is_subset(&body_vars)
    }

    /// A clause is *safe* when, additionally, every variable of every
    /// negated atom occurs in the positive body (no floundering).
    pub fn is_safe(&self) -> bool {
        let mut body_vars = BTreeSet::new();
        for b in &self.body {
            b.collect_vars(&mut body_vars);
        }
        self.is_range_restricted()
            && self
                .negative_body
                .iter()
                .all(|n| n.vars().is_subset(&body_vars))
    }

    /// All variables of the clause.
    pub fn vars(&self) -> BTreeSet<Symbol> {
        let mut out = self.head.vars();
        for b in self.body.iter().chain(&self.negative_body) {
            b.collect_vars(&mut out);
        }
        out
    }
}

impl fmt::Display for FoClause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.head)?;
        if !self.body.is_empty() || !self.negative_body.is_empty() {
            write!(f, " :- ")?;
            for (i, b) in self.body.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{b}")?;
            }
            for (i, n) in self.negative_body.iter().enumerate() {
                if i > 0 || !self.body.is_empty() {
                    write!(f, ", ")?;
                }
                write!(f, "\\+ {n}")?;
            }
        }
        write!(f, ".")
    }
}

/// A *generalized definite clause* (§4): a conjunction of atoms in the
/// head, a conjunction in the body. A C-logic rule translates to one of
/// these; in bottom-up computation each successful evaluation of the body
/// produces multiple results (one per head atom).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GeneralizedClause {
    /// The head atoms (non-empty).
    pub heads: Vec<FoAtom>,
    /// The body atoms.
    pub body: Vec<FoAtom>,
    /// Negated body atoms (carried through from normal C-logic clauses).
    pub negative_body: Vec<FoAtom>,
}

impl GeneralizedClause {
    /// Splits into ordinary first-order definite clauses, one per head
    /// atom, each with the full body. Multiple occurrences of the same
    /// variable across heads become independent after the split (§4).
    pub fn split(&self) -> Vec<FoClause> {
        self.heads
            .iter()
            .map(|h| FoClause {
                head: h.clone(),
                body: self.body.clone(),
                negative_body: self.negative_body.clone(),
            })
            .collect()
    }
}

impl fmt::Display for GeneralizedClause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, h) in self.heads.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{h}")?;
        }
        if !self.body.is_empty() || !self.negative_body.is_empty() {
            write!(f, " :- ")?;
            for (i, b) in self.body.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{b}")?;
            }
            for (i, n) in self.negative_body.iter().enumerate() {
                if i > 0 || !self.body.is_empty() {
                    write!(f, ", ")?;
                }
                write!(f, "\\+ {n}")?;
            }
        }
        write!(f, ".")
    }
}

/// A first-order definite-clause program.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FoProgram {
    /// Clauses in order.
    pub clauses: Vec<FoClause>,
}

impl FoProgram {
    /// An empty program.
    pub fn new() -> FoProgram {
        FoProgram::default()
    }

    /// Adds a clause.
    pub fn push(&mut self, c: FoClause) {
        self.clauses.push(c);
    }

    /// Number of clauses.
    pub fn len(&self) -> usize {
        self.clauses.len()
    }

    /// True iff there are no clauses.
    pub fn is_empty(&self) -> bool {
        self.clauses.is_empty()
    }

    /// Total number of atoms (heads + bodies).
    pub fn atom_count(&self) -> usize {
        self.clauses.iter().map(|c| 1 + c.body.len()).sum()
    }

    /// The set of predicate symbols with their arities.
    pub fn predicates(&self) -> BTreeSet<(Symbol, usize)> {
        let mut out = BTreeSet::new();
        for c in &self.clauses {
            out.insert((c.head.pred, c.head.arity()));
            for b in &c.body {
                out.insert((b.pred, b.arity()));
            }
        }
        out
    }
}

impl fmt::Display for FoProgram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for c in &self.clauses {
            writeln!(f, "{c}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbol::sym;

    #[test]
    fn display_atom_and_clause() {
        let a = FoAtom::new("src", vec![FoTerm::constant("p1"), FoTerm::constant("a")]);
        assert_eq!(a.to_string(), "src(p1, a)");
        let c = FoClause::rule(
            FoAtom::new("object", vec![FoTerm::var("X")]),
            vec![FoAtom::new("path", vec![FoTerm::var("X")])],
        );
        assert_eq!(c.to_string(), "object(X) :- path(X).");
        assert_eq!(FoClause::fact(a).to_string(), "src(p1, a).");
    }

    #[test]
    fn app_lowers_empty_args() {
        assert_eq!(FoTerm::app("c", vec![]), FoTerm::constant("c"));
        assert_eq!(FoTerm::app("f", vec![FoTerm::int(1)]).to_string(), "f(1)");
    }

    #[test]
    fn groundness_and_vars() {
        let t = FoTerm::app("f", vec![FoTerm::var("X"), FoTerm::constant("a")]);
        assert!(!t.is_ground());
        let mut vs = BTreeSet::new();
        t.collect_vars(&mut vs);
        assert_eq!(vs, [sym("X")].into_iter().collect());
        assert!(FoTerm::int(3).is_ground());
    }

    #[test]
    fn range_restriction() {
        let ok = FoClause::rule(
            FoAtom::new("p", vec![FoTerm::var("X")]),
            vec![FoAtom::new("q", vec![FoTerm::var("X"), FoTerm::var("Y")])],
        );
        assert!(ok.is_range_restricted());
        let bad = FoClause::rule(FoAtom::new("p", vec![FoTerm::var("X")]), vec![]);
        assert!(!bad.is_range_restricted());
        let ground = FoClause::fact(FoAtom::new("p", vec![FoTerm::constant("a")]));
        assert!(ground.is_range_restricted());
    }

    #[test]
    fn generalized_split() {
        // proper_np(X), pers(X,3) :- name(X).   splits into two clauses.
        let gc = GeneralizedClause {
            heads: vec![
                FoAtom::new("proper_np", vec![FoTerm::var("X")]),
                FoAtom::new("pers", vec![FoTerm::var("X"), FoTerm::int(3)]),
            ],
            body: vec![FoAtom::new("name", vec![FoTerm::var("X")])],
            negative_body: Vec::new(),
        };
        let split = gc.split();
        assert_eq!(split.len(), 2);
        assert_eq!(split[0].to_string(), "proper_np(X) :- name(X).");
        assert_eq!(split[1].to_string(), "pers(X, 3) :- name(X).");
        assert_eq!(gc.to_string(), "proper_np(X), pers(X, 3) :- name(X).");
    }

    #[test]
    fn program_accounting() {
        let mut p = FoProgram::new();
        assert!(p.is_empty());
        p.push(FoClause::fact(FoAtom::new(
            "name",
            vec![FoTerm::constant("john")],
        )));
        p.push(FoClause::rule(
            FoAtom::new("object", vec![FoTerm::var("X")]),
            vec![FoAtom::new("name", vec![FoTerm::var("X")])],
        ));
        assert_eq!(p.len(), 2);
        assert_eq!(p.atom_count(), 3);
        let preds = p.predicates();
        assert!(preds.contains(&(sym("name"), 1)));
        assert!(preds.contains(&(sym("object"), 1)));
    }

    #[test]
    fn term_size() {
        let t = FoTerm::app(
            "f",
            vec![FoTerm::app("g", vec![FoTerm::var("X")]), FoTerm::int(1)],
        );
        assert_eq!(t.size(), 4);
    }
}
