//! Terms of a language of objects (§3.1).
//!
//! The paper's grammar, with `L` a type symbol:
//!
//! ```text
//! t ::= L : X                               (typed variable)
//!     | L : c                               (typed constant)
//!     | L : f(t1, …, tn)                    (typed function application)
//!     | t0[l1 ⇒ e1, …, ln ⇒ en]   n ≥ 1     (molecule)
//! e ::= t | {t1, …, tk}                     (label value: term or collection)
//! ```
//!
//! where the head `t0` of a molecule must itself be one of the first three
//! forms — `student: id[name⇒joe][age⇒20]` is *not* a term. We make that
//! restriction unrepresentable by separating [`IdTerm`] (identity-denoting
//! terms) from [`Term`] (identity terms plus molecules).
//!
//! `object : t` may be abbreviated as `t`; in the AST the type is always
//! stored explicitly (defaulting to `object`).

use crate::hierarchy::object_type;
use crate::symbol::Symbol;
use std::collections::BTreeSet;
use std::fmt;

/// A constant: a zero-ary function symbol, an integer, or a string.
///
/// The paper's examples use plain identifiers (`john`), integers
/// (`age ⇒ 28`, path lengths) and quoted strings (`"John Smith"`); we give
/// each its own representation so arithmetic built-ins can distinguish
/// numbers from uninterpreted constants.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Const {
    /// An uninterpreted constant such as `john`.
    Sym(Symbol),
    /// An integer literal such as `28`.
    Int(i64),
    /// A string literal such as `"John Smith"` (contents interned).
    Str(Symbol),
}

impl fmt::Display for Const {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Const::Sym(s) => write!(f, "{s}"),
            Const::Int(i) => write!(f, "{i}"),
            Const::Str(s) => write!(f, "{:?}", s.as_str()),
        }
    }
}

/// An identity-denoting term: `L : X`, `L : c`, or `L : f(t1,…,tn)`.
///
/// These are the only terms allowed as the head of a molecule.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum IdTerm {
    /// `L : X` — a typed variable.
    Var {
        /// The asserted type `L`.
        ty: Symbol,
        /// The variable name `X`.
        name: Symbol,
    },
    /// `L : c` — a typed constant.
    Const {
        /// The asserted type `L`.
        ty: Symbol,
        /// The constant.
        c: Const,
    },
    /// `L : f(t1,…,tn)` with `n ≥ 1` — a typed function application.
    /// Arguments are full terms: `f(a[l ⇒ b])` is legal.
    App {
        /// The asserted type `L`.
        ty: Symbol,
        /// The function symbol `f`.
        functor: Symbol,
        /// The arguments `t1,…,tn` (non-empty; zero-ary functions are
        /// [`IdTerm::Const`]).
        args: Vec<Term>,
    },
}

impl IdTerm {
    /// The asserted type of this term.
    pub fn ty(&self) -> Symbol {
        match self {
            IdTerm::Var { ty, .. } | IdTerm::Const { ty, .. } | IdTerm::App { ty, .. } => *ty,
        }
    }

    /// Replaces the asserted type, keeping the identity part.
    pub fn with_ty(mut self, new_ty: Symbol) -> IdTerm {
        match &mut self {
            IdTerm::Var { ty, .. } | IdTerm::Const { ty, .. } | IdTerm::App { ty, .. } => {
                *ty = new_ty;
            }
        }
        self
    }

    /// True iff this is a variable.
    pub fn is_var(&self) -> bool {
        matches!(self, IdTerm::Var { .. })
    }

    /// True iff no variable occurs in this term.
    pub fn is_ground(&self) -> bool {
        match self {
            IdTerm::Var { .. } => false,
            IdTerm::Const { .. } => true,
            IdTerm::App { args, .. } => args.iter().all(Term::is_ground),
        }
    }

    /// Collects free variable names into `out`.
    pub fn collect_vars(&self, out: &mut BTreeSet<Symbol>) {
        match self {
            IdTerm::Var { name, .. } => {
                out.insert(*name);
            }
            IdTerm::Const { .. } => {}
            IdTerm::App { args, .. } => {
                for a in args {
                    a.collect_vars(out);
                }
            }
        }
    }
}

impl fmt::Display for IdTerm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // `object: t` is abbreviated as `t` (§3.1).
        let ty = self.ty();
        if ty != object_type() {
            write!(f, "{ty}: ")?;
        }
        self.fmt_untyped(f)
    }
}

impl IdTerm {
    fn fmt_untyped(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IdTerm::Var { name, .. } => write!(f, "{name}"),
            IdTerm::Const { c, .. } => write!(f, "{c}"),
            IdTerm::App { functor, args, .. } => {
                write!(f, "{functor}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
        }
    }
}

/// The value side of a label specification: a single term or a collection.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum LabelValue {
    /// `l ⇒ t`.
    One(Term),
    /// `l ⇒ {t1,…,tk}` — semantically the conjunction of `l ⇒ ti` (§3.2).
    Set(Vec<Term>),
}

impl LabelValue {
    /// The terms inside the value, one for [`LabelValue::One`].
    pub fn terms(&self) -> &[Term] {
        match self {
            LabelValue::One(t) => std::slice::from_ref(t),
            LabelValue::Set(ts) => ts,
        }
    }

    /// True iff every contained term is ground.
    pub fn is_ground(&self) -> bool {
        self.terms().iter().all(Term::is_ground)
    }
}

impl fmt::Display for LabelValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LabelValue::One(t) => write!(f, "{t}"),
            LabelValue::Set(ts) => {
                write!(f, "{{")?;
                for (i, t) in ts.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{t}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

/// One labelled value `l ⇒ e` inside a molecule.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LabelSpec {
    /// The label `l`.
    pub label: Symbol,
    /// The value `e`.
    pub value: LabelValue,
}

impl LabelSpec {
    /// `l ⇒ t`.
    pub fn one(label: impl Into<Symbol>, t: Term) -> LabelSpec {
        LabelSpec {
            label: label.into(),
            value: LabelValue::One(t),
        }
    }

    /// `l ⇒ {t1,…,tk}`.
    pub fn set(label: impl Into<Symbol>, ts: Vec<Term>) -> LabelSpec {
        LabelSpec {
            label: label.into(),
            value: LabelValue::Set(ts),
        }
    }
}

impl fmt::Display for LabelSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} => {}", self.label, self.value)
    }
}

/// A C-logic term: an identity term or a molecule `t0[l1⇒e1,…,ln⇒en]`.
///
/// A molecule `L: t[l1 ⇒ t1, …]` represents an object of type `L` whose
/// identity is denoted by `t`, with the listed properties.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Term {
    /// A bare identity term.
    Id(IdTerm),
    /// A molecule: head plus at least one label specification.
    Molecule {
        /// The identity-denoting head `t0`.
        head: IdTerm,
        /// The label specifications (non-empty by the grammar; an empty
        /// list is tolerated and means the same as the bare head).
        specs: Vec<LabelSpec>,
    },
}

impl Term {
    /// `object : X` — an untyped (i.e. top-typed) variable.
    pub fn var(name: impl Into<Symbol>) -> Term {
        Term::Id(IdTerm::Var {
            ty: object_type(),
            name: name.into(),
        })
    }

    /// `L : X`.
    pub fn typed_var(ty: impl Into<Symbol>, name: impl Into<Symbol>) -> Term {
        Term::Id(IdTerm::Var {
            ty: ty.into(),
            name: name.into(),
        })
    }

    /// `object : c` for a symbolic constant.
    pub fn constant(c: impl Into<Symbol>) -> Term {
        Term::Id(IdTerm::Const {
            ty: object_type(),
            c: Const::Sym(c.into()),
        })
    }

    /// `L : c` for a symbolic constant.
    pub fn typed_constant(ty: impl Into<Symbol>, c: impl Into<Symbol>) -> Term {
        Term::Id(IdTerm::Const {
            ty: ty.into(),
            c: Const::Sym(c.into()),
        })
    }

    /// An integer literal.
    pub fn int(i: i64) -> Term {
        Term::Id(IdTerm::Const {
            ty: object_type(),
            c: Const::Int(i),
        })
    }

    /// A string literal.
    pub fn string(s: &str) -> Term {
        Term::Id(IdTerm::Const {
            ty: object_type(),
            c: Const::Str(Symbol::new(s)),
        })
    }

    /// `object : f(args…)`.
    pub fn app(functor: impl Into<Symbol>, args: Vec<Term>) -> Term {
        Term::typed_app(object_type(), functor, args)
    }

    /// `L : f(args…)`. With empty `args` this is the constant `L : f`.
    pub fn typed_app(ty: impl Into<Symbol>, functor: impl Into<Symbol>, args: Vec<Term>) -> Term {
        let ty = ty.into();
        let functor = functor.into();
        if args.is_empty() {
            Term::Id(IdTerm::Const {
                ty,
                c: Const::Sym(functor),
            })
        } else {
            Term::Id(IdTerm::App { ty, functor, args })
        }
    }

    /// Builds a molecule from a head term. If `head` is already a
    /// molecule, the new specs are appended (`t[a⇒1][b⇒2]` is not a term
    /// in the grammar, so the nearest meaning — one molecule with both
    /// specs — is never silently produced; this constructor instead
    /// returns `None` for molecule heads, enforcing the grammar).
    pub fn molecule(head: Term, specs: Vec<LabelSpec>) -> Option<Term> {
        match head {
            Term::Id(id) => Some(Term::Molecule { head: id, specs }),
            Term::Molecule { .. } => None,
        }
    }

    /// Builds a molecule directly from an identity term.
    pub fn molecule_of(head: IdTerm, specs: Vec<LabelSpec>) -> Term {
        Term::Molecule { head, specs }
    }

    /// The identity part of this term (the head for molecules).
    pub fn id_term(&self) -> &IdTerm {
        match self {
            Term::Id(id) => id,
            Term::Molecule { head, .. } => head,
        }
    }

    /// The asserted type of this term.
    pub fn ty(&self) -> Symbol {
        self.id_term().ty()
    }

    /// The label specifications; empty for bare identity terms.
    pub fn specs(&self) -> &[LabelSpec] {
        match self {
            Term::Id(_) => &[],
            Term::Molecule { specs, .. } => specs,
        }
    }

    /// True iff this term is a molecule with at least one spec.
    pub fn is_molecule(&self) -> bool {
        !self.specs().is_empty()
    }

    /// True iff no variable occurs anywhere in the term, including inside
    /// label values.
    pub fn is_ground(&self) -> bool {
        match self {
            Term::Id(id) => id.is_ground(),
            Term::Molecule { head, specs } => {
                head.is_ground() && specs.iter().all(|s| s.value.is_ground())
            }
        }
    }

    /// Collects free variable names into `out` (all variables in a clause
    /// are implicitly universally quantified at the outermost level, §4).
    pub fn collect_vars(&self, out: &mut BTreeSet<Symbol>) {
        match self {
            Term::Id(id) => id.collect_vars(out),
            Term::Molecule { head, specs } => {
                head.collect_vars(out);
                for s in specs {
                    for t in s.value.terms() {
                        t.collect_vars(out);
                    }
                }
            }
        }
    }

    /// The set of free variable names.
    pub fn vars(&self) -> BTreeSet<Symbol> {
        let mut out = BTreeSet::new();
        self.collect_vars(&mut out);
        out
    }

    /// Structural size: number of identity-term and label-spec nodes.
    /// Used by benchmarks and by proptest shrinking sanity checks.
    pub fn size(&self) -> usize {
        match self {
            Term::Id(id) => id_size(id),
            Term::Molecule { head, specs } => {
                id_size(head)
                    + specs
                        .iter()
                        .map(|s| 1 + s.value.terms().iter().map(Term::size).sum::<usize>())
                        .sum::<usize>()
            }
        }
    }
}

fn id_size(id: &IdTerm) -> usize {
    match id {
        IdTerm::Var { .. } | IdTerm::Const { .. } => 1,
        IdTerm::App { args, .. } => 1 + args.iter().map(Term::size).sum::<usize>(),
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Id(id) => write!(f, "{id}"),
            Term::Molecule { head, specs } => {
                write!(f, "{head}[")?;
                for (i, s) in specs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{s}")?;
                }
                write!(f, "]")
            }
        }
    }
}

impl From<IdTerm> for Term {
    fn from(id: IdTerm) -> Term {
        Term::Id(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbol::sym;

    #[test]
    fn display_elides_object_type() {
        assert_eq!(Term::var("X").to_string(), "X");
        assert_eq!(Term::typed_var("path", "C").to_string(), "path: C");
        assert_eq!(Term::constant("john").to_string(), "john");
        assert_eq!(
            Term::typed_constant("name", "john").to_string(),
            "name: john"
        );
    }

    #[test]
    fn display_molecule_paper_example() {
        // path: g(X,Y)[length => 10]   (Example 1)
        let head = IdTerm::App {
            ty: sym("path"),
            functor: sym("g"),
            args: vec![Term::var("X"), Term::var("Y")],
        };
        let t = Term::molecule_of(head, vec![LabelSpec::one("length", Term::int(10))]);
        assert_eq!(t.to_string(), "path: g(X, Y)[length => 10]");
    }

    #[test]
    fn display_collection_value() {
        // person: john[children => {person: bob, person: bill}]
        let t = Term::molecule_of(
            IdTerm::Const {
                ty: sym("person"),
                c: Const::Sym(sym("john")),
            },
            vec![LabelSpec::set(
                "children",
                vec![
                    Term::typed_constant("person", "bob"),
                    Term::typed_constant("person", "bill"),
                ],
            )],
        );
        assert_eq!(
            t.to_string(),
            "person: john[children => {person: bob, person: bill}]"
        );
    }

    #[test]
    fn molecule_head_cannot_be_molecule() {
        let inner = Term::molecule(
            Term::constant("id"),
            vec![LabelSpec::one("name", Term::constant("joe"))],
        )
        .unwrap();
        // student: id[name=>joe][age=>20] is not a term (Example 1).
        assert!(Term::molecule(inner, vec![LabelSpec::one("age", Term::int(20))]).is_none());
    }

    #[test]
    fn zero_arg_app_is_constant() {
        let t = Term::typed_app("part", "f", vec![]);
        assert_eq!(t, Term::typed_constant("part", "f"));
    }

    #[test]
    fn groundness() {
        assert!(Term::constant("a").is_ground());
        assert!(!Term::var("X").is_ground());
        let t = Term::molecule(
            Term::constant("p"),
            vec![LabelSpec::one("src", Term::var("S"))],
        )
        .unwrap();
        assert!(!t.is_ground());
        let g = Term::molecule(
            Term::constant("p"),
            vec![LabelSpec::set(
                "src",
                vec![Term::constant("a"), Term::int(3)],
            )],
        )
        .unwrap();
        assert!(g.is_ground());
    }

    #[test]
    fn vars_collects_everywhere() {
        let t = Term::molecule(
            Term::app("id", vec![Term::var("X"), Term::var("Y")]),
            vec![
                LabelSpec::one("src", Term::var("X")),
                LabelSpec::set("hops", vec![Term::var("Z"), Term::constant("a")]),
            ],
        )
        .unwrap();
        let vs = t.vars();
        assert_eq!(vs, [sym("X"), sym("Y"), sym("Z")].into_iter().collect());
    }

    #[test]
    fn size_counts_nodes() {
        assert_eq!(Term::constant("a").size(), 1);
        assert_eq!(
            Term::app("f", vec![Term::var("X"), Term::constant("b")]).size(),
            3
        );
        let m = Term::molecule(
            Term::constant("p"),
            vec![LabelSpec::one("l", Term::constant("v"))],
        )
        .unwrap();
        assert_eq!(m.size(), 3); // head + spec + value
    }

    #[test]
    fn const_kinds_are_distinct() {
        assert_ne!(Term::int(1), Term::constant("1"));
        assert_ne!(Term::string("a"), Term::constant("a"));
        assert_eq!(Term::string("John Smith").to_string(), "\"John Smith\"");
    }

    #[test]
    fn with_ty_replaces_type() {
        let t = IdTerm::Const {
            ty: object_type(),
            c: Const::Sym(sym("john")),
        };
        let t2 = t.with_ty(sym("person"));
        assert_eq!(t2.ty(), sym("person"));
    }

    #[test]
    fn id_term_of_molecule_is_head() {
        let m = Term::molecule(
            Term::typed_constant("path", "p1"),
            vec![LabelSpec::one("src", Term::constant("a"))],
        )
        .unwrap();
        assert_eq!(m.id_term().ty(), sym("path"));
        assert_eq!(m.ty(), sym("path"));
        assert!(m.is_molecule());
        assert!(!Term::constant("a").is_molecule());
    }
}
