//! Decomposition and recombination of complex object descriptions (§3.2).
//!
//! The semantics of C-logic gives two equivalences:
//!
//! * `t[l1 ⇒ e1, …, ln ⇒ en]` ≡ `t[l1 ⇒ e1] ∧ … ∧ t[ln ⇒ en]`
//! * `t[l ⇒ {t1, …, tk}]` ≡ `t[l ⇒ t1] ∧ … ∧ t[l ⇒ tk]`
//!
//! so a complex description can always be decomposed into *atomic
//! descriptions* involving one label and one value, and — because
//! information about an object may be accumulated piecewise — various
//! pieces can be recombined into a complex description.
//!
//! This module implements both directions plus a *description ordering*
//! (`subsumes`): `d1 ⊑ d2` iff every atomic piece of `d1` is a piece of
//! `d2` and `d2`'s asserted type is at least as specific. The ordering is
//! what query evaluation over merged extensional databases checks (§4).

use crate::hierarchy::TypeHierarchy;
use crate::symbol::Symbol;
use crate::term::{LabelSpec, LabelValue, Term};
use std::collections::BTreeMap;

/// Decomposes a term into atomic descriptions: the bare head (its type
/// assertion) followed by one single-label, single-value molecule per
/// labelled value. A bare identity term decomposes into itself.
///
/// Values are *not* decomposed recursively — a nested molecule value stays
/// intact; recursive flattening is the job of the first-order
/// transformation ([`crate::transform`]).
pub fn atoms(t: &Term) -> Vec<Term> {
    match t {
        Term::Id(_) => vec![t.clone()],
        Term::Molecule { head, specs } => {
            let mut out = Vec::with_capacity(1 + specs.len());
            out.push(Term::Id(head.clone()));
            for s in specs {
                for v in s.value.terms() {
                    out.push(Term::Molecule {
                        head: head.clone(),
                        specs: vec![LabelSpec::one(s.label, v.clone())],
                    });
                }
            }
            out
        }
    }
}

/// The atomic label-value pairs of a term: `(label, value)` for each
/// single value, collections expanded.
pub fn label_pairs(t: &Term) -> Vec<(Symbol, Term)> {
    t.specs()
        .iter()
        .flat_map(|s| s.value.terms().iter().map(move |v| (s.label, v.clone())))
        .collect()
}

/// Recombines descriptions of the *same* object into one molecule:
/// given `john[name ⇒ "J"]` and `john[age ⇒ 28]`, infers
/// `john[name ⇒ "J", age ⇒ 28]`.
///
/// All inputs must have an identical head identity term (same type, same
/// identity); returns `None` otherwise, or for an empty input. Values
/// under the same label are collected into a set value (multi-valued
/// labels, §2.2); duplicates are removed; label order is canonical
/// (sorted), so recombination is a normal form.
pub fn recombine(pieces: &[Term]) -> Option<Term> {
    let first = pieces.first()?;
    let head = first.id_term().clone();
    let mut by_label: BTreeMap<Symbol, Vec<Term>> = BTreeMap::new();
    for p in pieces {
        if p.id_term() != &head {
            return None;
        }
        for (l, v) in label_pairs(p) {
            let vs = by_label.entry(l).or_default();
            if !vs.contains(&v) {
                vs.push(v);
            }
        }
    }
    let specs: Vec<LabelSpec> = by_label
        .into_iter()
        .map(|(label, mut vs)| {
            vs.sort();
            if vs.len() == 1 {
                LabelSpec::one(label, vs.pop().expect("one element"))
            } else {
                LabelSpec {
                    label,
                    value: LabelValue::Set(vs),
                }
            }
        })
        .collect();
    if specs.is_empty() {
        Some(Term::Id(head))
    } else {
        Some(Term::Molecule { head, specs })
    }
}

/// Canonical form of a term: labels sorted, values under one label merged
/// and deduplicated, single-element collections lowered to single values.
/// Two descriptions are semantically equal (as ground descriptions) iff
/// their normal forms are equal.
pub fn normalize(t: &Term) -> Term {
    match t {
        Term::Id(_) => t.clone(),
        Term::Molecule { .. } => {
            recombine(std::slice::from_ref(t)).expect("single piece always recombines")
        }
    }
}

/// Description ordering `general ⊑ specific` over *ground* descriptions:
/// `specific` carries at least the information of `general`.
///
/// Holds iff the two heads denote the same identity, `specific`'s type is
/// a subtype of `general`'s type (more specific), and every atomic
/// label-value pair of `general` occurs in `specific` (values compared by
/// normal form, and recursively by ⊑ so a less-informative nested value is
/// also subsumed).
pub fn subsumes(general: &Term, specific: &Term, h: &TypeHierarchy) -> bool {
    // Identities must match structurally, ignoring the asserted types of
    // the heads themselves (those are compared via the hierarchy).
    if !same_identity(general, specific) {
        return false;
    }
    if !h.is_subtype(specific.ty(), general.ty()) {
        return false;
    }
    let specific_pairs = label_pairs(specific);
    label_pairs(general).iter().all(|(l, gv)| {
        specific_pairs
            .iter()
            .any(|(sl, sv)| sl == l && (normalize(sv) == normalize(gv) || subsumes(gv, sv, h)))
    })
}

fn same_identity(a: &Term, b: &Term) -> bool {
    use crate::term::IdTerm;
    match (a.id_term(), b.id_term()) {
        (IdTerm::Var { name: n1, .. }, IdTerm::Var { name: n2, .. }) => n1 == n2,
        (IdTerm::Const { c: c1, .. }, IdTerm::Const { c: c2, .. }) => c1 == c2,
        (
            IdTerm::App {
                functor: f1,
                args: a1,
                ..
            },
            IdTerm::App {
                functor: f2,
                args: a2,
                ..
            },
        ) => {
            f1 == f2 && a1.len() == a2.len() && a1.iter().zip(a2).all(|(x, y)| same_identity(x, y))
        }
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbol::sym;

    fn john(specs: Vec<LabelSpec>) -> Term {
        Term::molecule(Term::typed_constant("person", "john"), specs).unwrap()
    }

    #[test]
    fn atoms_of_bare_term() {
        let t = Term::constant("john");
        assert_eq!(atoms(&t), vec![t]);
    }

    #[test]
    fn atoms_splits_labels_and_collections() {
        // john[name => "John Smith", children => {bob, bill}]
        let t = john(vec![
            LabelSpec::one("name", Term::string("John Smith")),
            LabelSpec::set(
                "children",
                vec![Term::constant("bob"), Term::constant("bill")],
            ),
        ]);
        let parts = atoms(&t);
        assert_eq!(parts.len(), 4); // head + name + 2 children
        assert_eq!(parts[0], Term::typed_constant("person", "john"));
        assert_eq!(
            parts[1],
            john(vec![LabelSpec::one("name", Term::string("John Smith"))])
        );
        assert_eq!(
            parts[2],
            john(vec![LabelSpec::one("children", Term::constant("bob"))])
        );
        assert_eq!(
            parts[3],
            john(vec![LabelSpec::one("children", Term::constant("bill"))])
        );
    }

    #[test]
    fn recombine_inverts_atoms() {
        let t = john(vec![
            LabelSpec::one("age", Term::int(28)),
            LabelSpec::one("name", Term::string("John Smith")),
        ]);
        let parts = atoms(&t);
        let back = recombine(&parts).unwrap();
        assert_eq!(back, normalize(&t));
    }

    #[test]
    fn recombine_merges_piecewise_information() {
        // §2.2: from john[name => "John Smith"] and john[age => 28]
        // infer john[name => "John Smith", age => 28].
        let p1 = john(vec![LabelSpec::one("name", Term::string("John Smith"))]);
        let p2 = john(vec![LabelSpec::one("age", Term::int(28))]);
        let merged = recombine(&[p1, p2]).unwrap();
        assert_eq!(
            merged,
            john(vec![
                LabelSpec::one("age", Term::int(28)),
                LabelSpec::one("name", Term::string("John Smith")),
            ])
        );
    }

    #[test]
    fn recombine_multi_valued_label_builds_set() {
        // §4: path: p[src=>a] + path: p[src=>c] => path: p[src=>{a,c}]
        let p = |l: &str, v: &str| {
            Term::molecule(
                Term::typed_constant("path", "p"),
                vec![LabelSpec::one(l, Term::constant(v))],
            )
            .unwrap()
        };
        let merged =
            recombine(&[p("src", "a"), p("src", "c"), p("dest", "b"), p("dest", "d")]).unwrap();
        let mut src_vals = vec![Term::constant("a"), Term::constant("c")];
        src_vals.sort();
        let mut dest_vals = vec![Term::constant("b"), Term::constant("d")];
        dest_vals.sort();
        assert_eq!(
            merged,
            Term::molecule(
                Term::typed_constant("path", "p"),
                vec![
                    LabelSpec {
                        label: sym("dest"),
                        value: LabelValue::Set(dest_vals)
                    },
                    LabelSpec {
                        label: sym("src"),
                        value: LabelValue::Set(src_vals)
                    },
                ]
            )
            .unwrap()
        );
    }

    #[test]
    fn recombine_rejects_different_identities() {
        let p1 = john(vec![LabelSpec::one("age", Term::int(28))]);
        let p2 = Term::molecule(
            Term::typed_constant("person", "bob"),
            vec![LabelSpec::one("age", Term::int(30))],
        )
        .unwrap();
        assert!(recombine(&[p1, p2]).is_none());
        assert!(recombine(&[]).is_none());
    }

    #[test]
    fn normalize_dedups_and_sorts() {
        let t = john(vec![
            LabelSpec::set(
                "children",
                vec![Term::constant("bob"), Term::constant("bob")],
            ),
            LabelSpec::one("age", Term::int(28)),
        ]);
        let n = normalize(&t);
        assert_eq!(
            n,
            john(vec![
                LabelSpec::one("age", Term::int(28)),
                LabelSpec::one("children", Term::constant("bob")),
            ])
        );
        // idempotent
        assert_eq!(normalize(&n), n);
    }

    #[test]
    fn normalize_lowers_singleton_sets() {
        let t = john(vec![LabelSpec::set("age", vec![Term::int(28)])]);
        assert_eq!(
            normalize(&t),
            john(vec![LabelSpec::one("age", Term::int(28))])
        );
    }

    #[test]
    fn subsumption_basic() {
        let h = TypeHierarchy::new();
        let small = john(vec![LabelSpec::one("age", Term::int(28))]);
        let big = john(vec![
            LabelSpec::one("age", Term::int(28)),
            LabelSpec::one("name", Term::string("J")),
        ]);
        assert!(subsumes(&small, &big, &h));
        assert!(!subsumes(&big, &small, &h));
        assert!(subsumes(&small, &small, &h));
    }

    #[test]
    fn subsumption_respects_types() {
        let mut h = TypeHierarchy::new();
        h.declare(sym("student"), sym("person"));
        let as_person = Term::molecule(
            Term::typed_constant("person", "ann"),
            vec![LabelSpec::one("age", Term::int(20))],
        )
        .unwrap();
        let as_student = Term::molecule(
            Term::typed_constant("student", "ann"),
            vec![LabelSpec::one("age", Term::int(20))],
        )
        .unwrap();
        // student description carries more information than person one
        assert!(subsumes(&as_person, &as_student, &h));
        assert!(!subsumes(&as_student, &as_person, &h));
    }

    #[test]
    fn subsumption_query_over_merged_store() {
        // §4: fact path: p[src=>{a,c}, dest=>{b,d}]; the query
        // path: p[src=>a, dest=>d] succeeds by description ordering.
        let h = TypeHierarchy::new();
        let fact = Term::molecule(
            Term::typed_constant("path", "p"),
            vec![
                LabelSpec::set("src", vec![Term::constant("a"), Term::constant("c")]),
                LabelSpec::set("dest", vec![Term::constant("b"), Term::constant("d")]),
            ],
        )
        .unwrap();
        let query = Term::molecule(
            Term::typed_constant("path", "p"),
            vec![
                LabelSpec::one("src", Term::constant("a")),
                LabelSpec::one("dest", Term::constant("d")),
            ],
        )
        .unwrap();
        assert!(subsumes(&query, &fact, &h));
        // but a pair that is not in the store fails
        let bad = Term::molecule(
            Term::typed_constant("path", "p"),
            vec![LabelSpec::one("src", Term::constant("z"))],
        )
        .unwrap();
        assert!(!subsumes(&bad, &fact, &h));
    }

    #[test]
    fn subsumption_nested_values() {
        let h = TypeHierarchy::new();
        let nested_small = john(vec![LabelSpec::one(
            "spouse",
            Term::molecule(
                Term::constant("mary"),
                vec![LabelSpec::one("age", Term::int(27))],
            )
            .unwrap(),
        )]);
        let nested_big = john(vec![LabelSpec::one(
            "spouse",
            Term::molecule(
                Term::constant("mary"),
                vec![
                    LabelSpec::one("age", Term::int(27)),
                    LabelSpec::one("job", Term::constant("dba")),
                ],
            )
            .unwrap(),
        )]);
        assert!(subsumes(&nested_small, &nested_big, &h));
        assert!(!subsumes(&nested_big, &nested_small, &h));
    }

    #[test]
    fn label_pairs_expands_sets() {
        let t = john(vec![LabelSpec::set(
            "children",
            vec![Term::constant("bob"), Term::constant("bill")],
        )]);
        let pairs = label_pairs(&t);
        assert_eq!(pairs.len(), 2);
        assert!(pairs.contains(&(sym("children"), Term::constant("bob"))));
    }

    #[test]
    fn same_identity_ignores_head_types() {
        let a = Term::typed_constant("person", "john");
        let b = Term::typed_constant("student", "john");
        assert!(same_identity(&a, &b));
        let f1 = Term::app("id", vec![Term::constant("x")]);
        let f2 = Term::typed_app("path", "id", vec![Term::constant("x")]);
        assert!(same_identity(&f1, &f2));
        assert!(!same_identity(
            &f1,
            &Term::app("id", vec![Term::constant("y")])
        ));
    }

    #[test]
    fn recombine_head_requires_same_type_symbol() {
        // recombination (unlike subsumption) is syntactic: identical heads.
        let p1 = Term::molecule(
            Term::typed_constant("person", "ann"),
            vec![LabelSpec::one("a", Term::int(1))],
        )
        .unwrap();
        let p2 = Term::molecule(
            Term::typed_constant("student", "ann"),
            vec![LabelSpec::one("b", Term::int(2))],
        )
        .unwrap();
        assert!(recombine(&[p1, p2]).is_none());
    }

    #[test]
    fn atoms_preserve_nested_values() {
        let inner = Term::molecule(
            Term::constant("mary"),
            vec![LabelSpec::one("age", Term::int(27))],
        )
        .unwrap();
        let t = john(vec![LabelSpec::one("spouse", inner.clone())]);
        let parts = atoms(&t);
        assert_eq!(parts[1], john(vec![LabelSpec::one("spouse", inner)]));
    }
}
