//! Static termination analysis for translated programs.
//!
//! Skolemization (§2.1) puts function terms in rule heads: an
//! entity-creating rule like `t: X[next ⇒ Y] :- t: Y` translates to
//! clauses whose heads contain `sk(Y)`. Bottom-up evaluation of such a
//! program derives `t(a)`, `t(sk(a))`, `t(sk(sk(a)))`, … — the least
//! model is infinite and every exhaustive strategy diverges.
//!
//! The guard implemented here detects the syntactic pattern behind that
//! divergence: a clause whose head contains a **non-ground function term**
//! and whose head predicate sits in a **recursive strongly connected
//! component** of the predicate dependency graph. Each fixpoint round can
//! then feed the head's function term back into its own body, growing
//! terms without bound.
//!
//! The analysis is deliberately conservative in the safe direction: a
//! flagged program *may* still terminate (the recursion may be bounded by
//! the data), and callers use the flag only to tighten default resource
//! budgets — never to reject a program.

use crate::fol::{FoClause, FoProgram, FoTerm};
use crate::symbol::Symbol;
use std::collections::HashMap;

/// One clause matching the skolem-recursion pattern.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SkolemRecursion {
    /// Index of the clause in the program.
    pub clause: usize,
    /// The head predicate (member of a recursive SCC).
    pub pred: Symbol,
    /// The outermost function symbol of the offending head term.
    pub function: Symbol,
}

impl std::fmt::Display for SkolemRecursion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "clause {}: recursive predicate {} constructs {}(…) in its head",
            self.clause, self.pred, self.function
        )
    }
}

/// Predicate node: symbol plus arity (the same predicate name at
/// different arities is treated as distinct, matching clause indexing).
type Node = (Symbol, usize);

/// Tarjan's strongly connected components, iterative so deep dependency
/// chains cannot overflow the stack.
fn sccs(n: usize, adj: &[Vec<usize>]) -> Vec<Vec<usize>> {
    #[derive(Clone, Copy)]
    struct Entry {
        index: u32,
        lowlink: u32,
        on_stack: bool,
        visited: bool,
    }
    let mut state = vec![
        Entry {
            index: 0,
            lowlink: 0,
            on_stack: false,
            visited: false,
        };
        n
    ];
    let mut next_index = 0u32;
    let mut stack: Vec<usize> = Vec::new();
    let mut out: Vec<Vec<usize>> = Vec::new();
    // Explicit DFS frames: (node, next child position).
    let mut frames: Vec<(usize, usize)> = Vec::new();
    for root in 0..n {
        if state[root].visited {
            continue;
        }
        frames.push((root, 0));
        while let Some(&mut (v, ref mut ci)) = frames.last_mut() {
            if *ci == 0 {
                state[v].visited = true;
                state[v].index = next_index;
                state[v].lowlink = next_index;
                next_index += 1;
                state[v].on_stack = true;
                stack.push(v);
            }
            if let Some(&w) = adj[v].get(*ci) {
                *ci += 1;
                if !state[w].visited {
                    frames.push((w, 0));
                } else if state[w].on_stack {
                    state[v].lowlink = state[v].lowlink.min(state[w].index);
                }
            } else {
                frames.pop();
                if let Some(&(parent, _)) = frames.last() {
                    let low = state[v].lowlink;
                    state[parent].lowlink = state[parent].lowlink.min(low);
                }
                if state[v].lowlink == state[v].index {
                    let mut comp = Vec::new();
                    while let Some(w) = stack.pop() {
                        state[w].on_stack = false;
                        comp.push(w);
                        if w == v {
                            break;
                        }
                    }
                    out.push(comp);
                }
            }
        }
    }
    out
}

/// The outermost function symbol of the first non-ground `App` in the
/// atom's arguments, if any. Ground function terms (e.g. `f(a)`) cannot
/// grow across rounds and are ignored.
fn growing_function(clause: &FoClause) -> Option<Symbol> {
    fn find(t: &FoTerm) -> Option<Symbol> {
        match t {
            FoTerm::App(f, _) if !t.is_ground() => Some(*f),
            _ => None,
        }
    }
    clause.head.args.iter().find_map(find)
}

/// Detects clauses whose head builds a non-ground function term while the
/// head predicate participates in recursion (directly or mutually).
///
/// Returns the matching clauses; an empty result means the guard found no
/// syntactic evidence of an infinite least model. Negated body atoms
/// contribute dependency edges like positive ones.
pub fn skolem_recursion(p: &FoProgram) -> Vec<SkolemRecursion> {
    // Index predicate nodes.
    let mut ids: HashMap<Node, usize> = HashMap::new();
    let id_of = |ids: &mut HashMap<Node, usize>, node: Node| -> usize {
        let next = ids.len();
        *ids.entry(node).or_insert(next)
    };
    let mut edges: Vec<(usize, usize)> = Vec::new();
    for c in &p.clauses {
        let h = id_of(&mut ids, (c.head.pred, c.head.arity()));
        for b in c.body.iter().chain(&c.negative_body) {
            let t = id_of(&mut ids, (b.pred, b.arity()));
            edges.push((h, t));
        }
    }
    let n = ids.len();
    let mut adj = vec![Vec::new(); n];
    let mut self_loop = vec![false; n];
    for (a, b) in edges {
        if a == b {
            self_loop[a] = true;
        }
        adj[a].push(b);
    }
    // A node is recursive iff its SCC has ≥ 2 members or it has a
    // self-loop.
    let mut recursive = vec![false; n];
    for comp in sccs(n, &adj) {
        if comp.len() >= 2 {
            for v in comp {
                recursive[v] = true;
            }
        } else if self_loop[comp[0]] {
            recursive[comp[0]] = true;
        }
    }

    let mut out = Vec::new();
    for (i, c) in p.clauses.iter().enumerate() {
        if c.body.is_empty() && c.negative_body.is_empty() {
            continue; // facts are ground data, not generators
        }
        let node = ids[&(c.head.pred, c.head.arity())];
        if !recursive[node] {
            continue;
        }
        if let Some(function) = growing_function(c) {
            out.push(SkolemRecursion {
                clause: i,
                pred: c.head.pred,
                function,
            });
        }
    }
    out
}

/// Whether [`skolem_recursion`] flags anything: the program's least model
/// may be infinite, so exhaustive evaluation should run under a bounded
/// budget.
pub fn may_diverge(p: &FoProgram) -> bool {
    !skolem_recursion(p).is_empty()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fol::FoAtom;

    fn atom(p: &str, args: Vec<FoTerm>) -> FoAtom {
        FoAtom::new(p, args)
    }
    fn v(s: &str) -> FoTerm {
        FoTerm::var(s)
    }
    fn c(s: &str) -> FoTerm {
        FoTerm::constant(s)
    }
    fn app(f: &str, args: Vec<FoTerm>) -> FoTerm {
        FoTerm::App(crate::sym(f), args)
    }

    #[test]
    fn plain_recursion_is_not_flagged() {
        // path(X,Z) :- edge(X,Y), path(Y,Z): recursive, but the head is
        // function-free — the least model is bounded by the data.
        let mut p = FoProgram::new();
        p.push(FoClause::fact(atom("edge", vec![c("a"), c("b")])));
        p.push(FoClause::rule(
            atom("path", vec![v("X"), v("Y")]),
            vec![atom("edge", vec![v("X"), v("Y")])],
        ));
        p.push(FoClause::rule(
            atom("path", vec![v("X"), v("Z")]),
            vec![
                atom("edge", vec![v("X"), v("Y")]),
                atom("path", vec![v("Y"), v("Z")]),
            ],
        ));
        assert!(skolem_recursion(&p).is_empty());
        assert!(!may_diverge(&p));
    }

    #[test]
    fn skolem_recursion_is_flagged() {
        // t(a).  t(sk(Y)) :- t(Y): infinite least model.
        let mut p = FoProgram::new();
        p.push(FoClause::fact(atom("t", vec![c("a")])));
        p.push(FoClause::rule(
            atom("t", vec![app("sk", vec![v("Y")])]),
            vec![atom("t", vec![v("Y")])],
        ));
        let flagged = skolem_recursion(&p);
        assert_eq!(flagged.len(), 1);
        assert_eq!(flagged[0].clause, 1);
        assert_eq!(flagged[0].pred, crate::sym("t"));
        assert_eq!(flagged[0].function, crate::sym("sk"));
        assert!(may_diverge(&p));
    }

    #[test]
    fn mutual_recursion_is_flagged() {
        // p(f(X)) :- q(X).  q(X) :- p(X): the SCC {p, q} is recursive and
        // p's head constructs.
        let mut p = FoProgram::new();
        p.push(FoClause::fact(atom("q", vec![c("a")])));
        p.push(FoClause::rule(
            atom("p", vec![app("f", vec![v("X")])]),
            vec![atom("q", vec![v("X")])],
        ));
        p.push(FoClause::rule(
            atom("q", vec![v("X")]),
            vec![atom("p", vec![v("X")])],
        ));
        assert_eq!(skolem_recursion(&p).len(), 1);
    }

    #[test]
    fn constructor_outside_recursion_is_not_flagged() {
        // addr(pair(X,Y)) :- src(X), dst(Y): builds terms, but only once
        // per data tuple — no recursion through addr.
        let mut p = FoProgram::new();
        p.push(FoClause::fact(atom("src", vec![c("a")])));
        p.push(FoClause::fact(atom("dst", vec![c("b")])));
        p.push(FoClause::rule(
            atom("addr", vec![app("pair", vec![v("X"), v("Y")])]),
            vec![atom("src", vec![v("X")]), atom("dst", vec![v("Y")])],
        ));
        assert!(skolem_recursion(&p).is_empty());
    }

    #[test]
    fn ground_head_term_is_not_flagged() {
        // t(f(a)) :- t(a): the head term is ground, so the model stays
        // finite even though t is recursive.
        let mut p = FoProgram::new();
        p.push(FoClause::fact(atom("t", vec![c("a")])));
        p.push(FoClause::rule(
            atom("t", vec![app("f", vec![c("a")])]),
            vec![atom("t", vec![c("a")])],
        ));
        assert!(skolem_recursion(&p).is_empty());
    }

    #[test]
    fn arity_distinguishes_predicates() {
        // p/1 recursive and constructing, p/2 unrelated.
        let mut p = FoProgram::new();
        p.push(FoClause::fact(atom("p", vec![c("a")])));
        p.push(FoClause::rule(
            atom("p", vec![app("s", vec![v("X")])]),
            vec![atom("p", vec![v("X")])],
        ));
        p.push(FoClause::rule(
            atom("p", vec![app("pair", vec![v("X"), v("X")]), v("X")]),
            vec![atom("p", vec![v("X")])],
        ));
        let flagged = skolem_recursion(&p);
        assert_eq!(flagged.len(), 1);
        assert_eq!(flagged[0].clause, 1);
    }

    #[test]
    fn negated_bodies_contribute_edges() {
        let mut p = FoProgram::new();
        p.push(FoClause::fact(atom("t", vec![c("a")])));
        p.push(FoClause::rule_with_negation(
            atom("t", vec![app("sk", vec![v("Y")])]),
            vec![atom("seed", vec![v("Y")])],
            vec![atom("t", vec![v("Y")])],
        ));
        p.push(FoClause::fact(atom("seed", vec![c("a")])));
        assert!(may_diverge(&p));
    }
}
