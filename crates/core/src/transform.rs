//! Transformation into first-order logic (§3.3, Theorem 1; §4).
//!
//! Every atomic formula `α` of a language of objects has an equivalent
//! conjunction `α*` of first-order atoms over `L'`:
//!
//! * `(L : X)* = L(X)` and `(L : c)* = L(c)`;
//! * `(L : f(t1,…,tn))* = L(f(t1,…,tn)') ∧ t1* ∧ … ∧ tn*`;
//! * `(t[l1⇒e1,…,ln⇒en])* = t* ∧ α1* ∧ … ∧ αn*` where `αi*` is
//!   `ei* ∧ li(t', ei')` for a term value, expanded over the members for a
//!   collection value;
//! * `(p(t1,…,tn))* = t1* ∧ … ∧ tn* ∧ p(t1',…,tn')`.
//!
//! with the term map `t'` erasing types and label specs:
//! `(L:X)' = X`, `(L:c)' = c`, `(L:f(…))' = f(…')`, `(t[…])' = t'`.
//!
//! A C-logic definite clause then becomes a **generalized definite
//! clause** (multi-head) whose heads are the conjuncts of the head's
//! translation and whose body concatenates the translations of the body
//! atoms; splitting yields ordinary first-order definite clauses. Finally
//! the **type axioms** are added: `t2(X) :- t1(X)` for each subtype
//! declaration, and `object(X) :- t(X)` for each proper type symbol `t`
//! occurring in the program (§4 notes only finitely many are needed).
//!
//! One engineering deviation, documented here and in DESIGN.md: argument
//! positions of *evaluable built-in predicates* (`is`, comparisons) are
//! translated by `t'` only — no typing atoms are emitted for them.
//! Emitting `object(L0 + 1)` for the path rule's `L is L0 + 1` would
//! demand arithmetic terms in the active domain, which is plainly not the
//! paper's intent (its §4 translation of the grammar example emits typing
//! atoms only for object-denoting positions).

use crate::fol::{FoAtom, FoClause, FoProgram, FoTerm, GeneralizedClause};
use crate::formula::{Atomic, DefiniteClause, Query};
use crate::hierarchy::object_type;
use crate::program::Program;
use crate::symbol::Symbol;
use crate::term::{IdTerm, Term};
use std::collections::{BTreeSet, HashSet};

/// The built-in predicate symbols treated as evaluable by default.
pub const DEFAULT_BUILTINS: &[&str] = &[
    "is", "<", ">", "=<", ">=", "=:=", "=\\=", "=", "\\=", "==", "\\==",
];

/// Work counters accumulated across a translation (and its incremental
/// extensions), including the §4 optimizer's per-rule deletion tallies.
///
/// This crate stays dependency-free, so the counters are plain fields;
/// the session layer flushes them into its metrics registry (as
/// `core.translate.*`) after each load. All counts are cumulative over
/// the life of the owning [`TranslationState`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TranslationStats {
    /// C-logic program clauses translated.
    pub clauses_transformed: u64,
    /// First-order clauses emitted (split clauses, axioms, aux clauses).
    pub clauses_emitted: u64,
    /// Candidate clauses suppressed by the program-wide dedup set.
    pub duplicates_suppressed: u64,
    /// Type axioms emitted (`object(X) :- t(X)` and `sup(X) :- sub(X)`).
    pub type_axioms_emitted: u64,
    /// Auxiliary `__nauxN` clauses created for negated molecules.
    pub aux_clauses: u64,
    /// Typing atoms deleted by §4 rule 1 (a more specific typing atom for
    /// the same argument was present in the same head or body).
    pub rule1_deletions: u64,
    /// Head typing atoms deleted by §4 rule 2 (guaranteed by the body).
    pub rule2_deletions: u64,
    /// Body `object(t)` checks pruned by rule 3 (implied by another body
    /// atom mentioning `t`).
    pub rule3_object_prunes: u64,
    /// Whole clauses dropped because rules 1–2 deleted every head atom.
    pub clauses_subsumed: u64,
    /// Clauses removed by the global dead-clause elimination.
    pub dead_clauses_removed: u64,
}

/// Carry-over state for *incremental* (delta) translation.
///
/// A session that loads program text cumulatively wants to translate only
/// the clauses appended since the last translation and push the resulting
/// first-order clauses onto the cached [`FoProgram`]. For the result to
/// match a from-scratch translation of the whole program, three pieces of
/// translator state must survive across deltas:
///
/// * the **split-clause dedup set** — distinct molecules sharing values
///   produce identical split facts, and a delta must not re-emit a clause
///   an earlier load already produced (nor miss that a "duplicate" within
///   the delta is actually new program-wide);
/// * the **auxiliary predicate counter** — negated molecules compile to
///   `__nauxN` helper clauses, and `N` must keep counting program-wide;
/// * the **emitted type axioms** — `object(X) :- t(X)` is emitted once
///   per proper type and `sup(X) :- sub(X)` once per subtype declaration,
///   so the state records which are already present.
///
/// The only divergence an extension permits is clause *order* (a delta's
/// clauses land after the earlier loads' axioms); the emitted clause
/// *set* is identical, which is what every evaluation strategy depends
/// on. See `Optimizer::extend_optimized` for the extra conditions the §4
/// optimizer imposes before a delta may extend an optimized translation.
#[derive(Clone, Debug, Default)]
pub struct TranslationState {
    /// Split clauses emitted so far (program-wide dedup).
    seen: HashSet<FoClause>,
    /// Auxiliary predicate counter for negated molecules (`__nauxN`).
    aux_counter: usize,
    /// Proper types whose axiom `object(X) :- t(X)` has been emitted.
    axiom_types: BTreeSet<Symbol>,
    /// Subtype declarations already turned into `sup(X) :- sub(X)`.
    subtype_axioms: usize,
    /// Program clauses translated so far.
    clauses_done: usize,
    /// Set by `Optimizer::optimized_program_with_state` when the global
    /// dead-clause elimination dropped clauses: the cached translation is
    /// then not a pure union of per-clause translations, and a delta must
    /// re-translate from scratch (an appended clause could resurrect a
    /// dropped one).
    pub dropped_clauses: bool,
    /// Cumulative work counters (clauses transformed, §4 deletions, …).
    pub stats: TranslationStats,
}

impl TranslationState {
    /// How many program clauses this state has translated.
    pub fn clauses_done(&self) -> usize {
        self.clauses_done
    }

    /// Record that `n` program clauses are now covered (used by the
    /// optimizer's extension path, which translates clause by clause).
    pub(crate) fn set_clauses_done(&mut self, n: usize) {
        self.clauses_done = n;
    }

    /// The shared aux-predicate counter (see `__nauxN` clauses).
    pub(crate) fn aux_counter_mut(&mut self) -> &mut usize {
        &mut self.aux_counter
    }

    /// Inserts a split clause into the program-wide dedup set; true when
    /// it was new (and should be emitted). Counts emissions and
    /// suppressed duplicates into [`TranslationState::stats`].
    pub(crate) fn emit(&mut self, c: &FoClause) -> bool {
        let fresh = self.seen.insert(c.clone());
        if fresh {
            self.stats.clauses_emitted += 1;
        } else {
            self.stats.duplicates_suppressed += 1;
        }
        fresh
    }
}

/// The transformer from C-logic into first-order logic.
///
/// Holds the set of built-in (evaluable) predicate symbols whose argument
/// positions are translated without typing atoms.
///
/// ```
/// use clogic_core::transform::Transformer;
/// use clogic_core::{Atomic, LabelSpec, Term};
///
/// // john[age => 28]  ⇒  object(john) ∧ object(28) ∧ age(john, 28)
/// let molecule = Term::molecule(
///     Term::constant("john"),
///     vec![LabelSpec::one("age", Term::int(28))],
/// )
/// .unwrap();
/// let conj = Transformer::new().atomic(&Atomic::term(molecule));
/// let shown: Vec<String> = conj.iter().map(|a| a.to_string()).collect();
/// assert_eq!(shown, ["object(john)", "object(28)", "age(john, 28)"]);
/// ```
#[derive(Clone, Debug)]
pub struct Transformer {
    builtins: BTreeSet<Symbol>,
}

impl Default for Transformer {
    fn default() -> Self {
        Transformer::new()
    }
}

impl Transformer {
    /// A transformer recognizing [`DEFAULT_BUILTINS`].
    pub fn new() -> Transformer {
        Transformer {
            builtins: DEFAULT_BUILTINS.iter().map(|s| Symbol::new(s)).collect(),
        }
    }

    /// A transformer with no built-ins: the literal Theorem 1 map.
    pub fn pure() -> Transformer {
        Transformer {
            builtins: BTreeSet::new(),
        }
    }

    /// Registers an additional built-in predicate symbol.
    pub fn add_builtin(&mut self, p: impl Into<Symbol>) {
        self.builtins.insert(p.into());
    }

    /// Whether `p` is treated as evaluable.
    pub fn is_builtin(&self, p: Symbol) -> bool {
        self.builtins.contains(&p)
    }

    /// The term map `t'`: erases types and label specifications, keeping
    /// only the identity skeleton.
    pub fn term(&self, t: &Term) -> FoTerm {
        self.id_term(t.id_term())
    }

    fn id_term(&self, id: &IdTerm) -> FoTerm {
        match id {
            IdTerm::Var { name, .. } => FoTerm::Var(*name),
            IdTerm::Const { c, .. } => FoTerm::Const(*c),
            IdTerm::App { functor, args, .. } => {
                FoTerm::App(*functor, args.iter().map(|a| self.term(a)).collect())
            }
        }
    }

    /// The formula map `α*` for a term used as a formula: pushes the
    /// conjuncts onto `out` in the paper's left-to-right order.
    ///
    /// In *checks* mode (used for negated atoms) the content-free typing
    /// conjuncts `object(v)` are omitted: inside a negation they would
    /// make the clause depend on the active-domain predicate `object`,
    /// whose axioms `object(X) :- t(X)` turn every negated rule head into
    /// a negative cycle (unstratifiable). The omitted conjuncts are
    /// implied by the positive context that grounds the negated atom.
    fn term_formula(&self, t: &Term, out: &mut Vec<FoAtom>, checks: bool) {
        match t {
            Term::Id(id) => self.id_formula(id, out, checks),
            Term::Molecule { head, specs } => {
                self.id_formula(head, out, checks);
                let subject = self.id_term(head);
                for s in specs {
                    for v in s.value.terms() {
                        // ei* ∧ li(t', ei')
                        self.term_formula(v, out, checks);
                        push_unique(
                            out,
                            FoAtom::new(s.label, vec![subject.clone(), self.term(v)]),
                        );
                    }
                }
            }
        }
    }

    fn id_formula(&self, id: &IdTerm, out: &mut Vec<FoAtom>, checks: bool) {
        let skip = checks && id.ty() == object_type();
        match id {
            IdTerm::Var { ty, name } => {
                if !skip {
                    push_unique(out, FoAtom::new(*ty, vec![FoTerm::Var(*name)]));
                }
            }
            IdTerm::Const { ty, c } => {
                if !skip {
                    push_unique(out, FoAtom::new(*ty, vec![FoTerm::Const(*c)]));
                }
            }
            IdTerm::App { ty, functor, args } => {
                if !skip {
                    let fo = FoTerm::App(*functor, args.iter().map(|a| self.term(a)).collect());
                    push_unique(out, FoAtom::new(*ty, vec![fo]));
                }
                for a in args {
                    self.term_formula(a, out, checks);
                }
            }
        }
    }

    /// Translates an atomic formula into its conjunction of first-order
    /// atoms, exact duplicates removed (the conjunction is a set).
    pub fn atomic(&self, a: &Atomic) -> Vec<FoAtom> {
        self.atomic_at(a, false)
    }

    /// Like [`Transformer::atomic`] but in checks mode (see
    /// [`Transformer::negated_atomic`]): `object(v)` typing conjuncts are
    /// omitted.
    pub fn atomic_checks(&self, a: &Atomic) -> Vec<FoAtom> {
        self.atomic_at(a, true)
    }

    fn atomic_at(&self, a: &Atomic, checks: bool) -> Vec<FoAtom> {
        let mut out = Vec::new();
        match a {
            Atomic::Term(t) => self.term_formula(t, &mut out, checks),
            Atomic::Pred { pred, args } => {
                if self.is_builtin(*pred) {
                    // Evaluable predicate: arguments via t' only.
                    push_unique(
                        out.as_mut(),
                        FoAtom::new(*pred, args.iter().map(|t| self.term(t)).collect()),
                    );
                } else {
                    // t1* ∧ … ∧ tn* ∧ p(t1',…,tn')
                    for t in args {
                        self.term_formula(t, &mut out, checks);
                    }
                    push_unique(
                        &mut out,
                        FoAtom::new(*pred, args.iter().map(|t| self.term(t)).collect()),
                    );
                }
            }
        }
        out
    }

    /// Translates a C-logic definite clause into a generalized definite
    /// clause: heads are the conjuncts of the head's translation, the body
    /// concatenates the body atoms' translations.
    ///
    /// Negated body atoms are carried through: when an atom's translation
    /// is a single first-order atom it is negated directly; a multi-atom
    /// translation `A1 ∧ … ∧ An` becomes `\+ auxᵢ(vars)` plus the
    /// auxiliary clause `auxᵢ(vars) :- A1,…,An` (returned alongside),
    /// because NAF negates derivability of the whole description.
    pub fn clause(&self, c: &DefiniteClause) -> GeneralizedClause {
        self.clause_with_aux(c, &mut Vec::new(), &mut 0)
    }

    /// Like [`Transformer::clause`], pushing any auxiliary clauses needed
    /// for negated molecules onto `aux` (numbered from `counter`).
    pub fn clause_with_aux(
        &self,
        c: &DefiniteClause,
        aux: &mut Vec<FoClause>,
        counter: &mut usize,
    ) -> GeneralizedClause {
        let heads = self.atomic(&c.head);
        let mut body = Vec::new();
        for b in &c.body {
            for a in self.atomic(b) {
                push_unique(&mut body, a);
            }
        }
        let mut negative_body = Vec::new();
        for n in &c.neg_body {
            negative_body.push(self.negated_atomic(n, aux, counter));
        }
        GeneralizedClause {
            heads,
            body,
            negative_body,
        }
    }

    /// Translates a negated atomic formula to a single first-order atom,
    /// creating an auxiliary predicate when the translation is a
    /// conjunction.
    pub fn negated_atomic(
        &self,
        a: &Atomic,
        aux: &mut Vec<FoClause>,
        counter: &mut usize,
    ) -> FoAtom {
        let mut conj = self.atomic_checks(a);
        if conj.is_empty() {
            // e.g. `\+ object: X` — fall back to the full translation.
            conj = self.atomic(a);
        }
        if conj.len() == 1 {
            return conj.into_iter().next().expect("one conjunct");
        }
        *counter += 1;
        let name = Symbol::new(&format!("__naux{counter}"));
        let vars: Vec<FoTerm> = {
            let mut vs = std::collections::BTreeSet::new();
            a.collect_vars(&mut vs);
            vs.into_iter().map(FoTerm::Var).collect()
        };
        let head = FoAtom::new(name, vars);
        aux.push(FoClause::rule(head.clone(), conj));
        head
    }

    /// Translates a query: the conjunction of the goals' translations.
    /// Negated goals are not included — use [`Transformer::query_parts`]
    /// for queries with negation.
    pub fn query(&self, q: &Query) -> Vec<FoAtom> {
        let mut out = Vec::new();
        for g in &q.goals {
            for a in self.atomic(g) {
                push_unique(&mut out, a);
            }
        }
        out
    }

    /// Translates a query with negation: positive goals, negated goals
    /// (one FO atom each; conjunction-shaped ones via auxiliary clauses
    /// appended to `aux`).
    pub fn query_parts(
        &self,
        q: &Query,
        aux: &mut Vec<FoClause>,
        counter: &mut usize,
    ) -> (Vec<FoAtom>, Vec<FoAtom>) {
        let pos = self.query(q);
        let neg = q
            .neg_goals
            .iter()
            .map(|n| self.negated_atomic(n, aux, counter))
            .collect();
        (pos, neg)
    }

    /// The type axioms for a program (§3.3, §4):
    /// `sup(X) :- sub(X)` per subtype declaration, and
    /// `object(X) :- t(X)` per proper type symbol occurring anywhere.
    pub fn type_axioms(&self, p: &Program) -> Vec<FoClause> {
        let x = FoTerm::var("X");
        let mut out = Vec::new();
        let sig = p.signature();
        for t in sig.proper_types() {
            out.push(FoClause::rule(
                FoAtom::new(object_type(), vec![x.clone()]),
                vec![FoAtom::new(t, vec![x.clone()])],
            ));
        }
        for &(sub, sup) in &p.subtype_decls {
            out.push(FoClause::rule(
                FoAtom::new(sup, vec![x.clone()]),
                vec![FoAtom::new(sub, vec![x.clone()])],
            ));
        }
        out
    }

    /// Translates a whole program into the *generalized logic program*:
    /// type axioms (already ordinary clauses) plus one generalized clause
    /// per C-logic clause.
    pub fn generalized_program(&self, p: &Program) -> (Vec<FoClause>, Vec<GeneralizedClause>) {
        let mut aux = Vec::new();
        let mut counter = 0;
        let generalized: Vec<GeneralizedClause> = p
            .clauses
            .iter()
            .map(|c| self.clause_with_aux(c, &mut aux, &mut counter))
            .collect();
        let mut axioms = self.type_axioms(p);
        axioms.extend(aux);
        (axioms, generalized)
    }

    /// Translates a whole program all the way to an ordinary first-order
    /// definite-clause program (generalized clauses split). Translated
    /// clauses come first and the type axioms last — top-down engines try
    /// clauses in program order, and facts should be found before the
    /// axioms recurse.
    pub fn program(&self, p: &Program) -> FoProgram {
        self.program_with_state(p).0
    }

    /// Like [`Transformer::program`], additionally returning the
    /// [`TranslationState`] needed to later *extend* the translation with
    /// delta clauses instead of re-translating from scratch.
    pub fn program_with_state(&self, p: &Program) -> (FoProgram, TranslationState) {
        let mut state = TranslationState::default();
        let mut out = FoProgram::new();
        self.extend_program(p, &mut out, &mut state);
        (out, state)
    }

    /// Incremental translation: translates `p.clauses[state.clauses_done()..]`
    /// (plus any type axioms not yet emitted — new proper types and new
    /// subtype declarations) and appends the results to `out`, updating
    /// `state`. Starting from a default state and an empty program this
    /// *is* the full translation; called after earlier extensions it emits
    /// exactly the clause set a from-scratch translation of the cumulative
    /// program would, modulo order (see [`TranslationState`]).
    pub fn extend_program(&self, p: &Program, out: &mut FoProgram, state: &mut TranslationState) {
        let mut aux = Vec::new();
        let from = state.clauses_done.min(p.clauses.len());
        let generalized: Vec<GeneralizedClause> = p.clauses[from..]
            .iter()
            .map(|c| self.clause_with_aux(c, &mut aux, &mut state.aux_counter))
            .collect();
        state.stats.clauses_transformed += (p.clauses.len() - from) as u64;
        state.stats.aux_clauses += aux.len() as u64;
        state.clauses_done = p.clauses.len();
        for gc in generalized {
            for c in gc.split() {
                // Distinct molecules sharing values produce identical
                // split facts (object(v) over and over); keep one copy.
                if state.emit(&c) {
                    out.push(c);
                }
            }
        }
        let mut axioms = self.new_type_axioms(p, state);
        axioms.extend(aux);
        for a in axioms {
            if state.emit(&a) {
                out.push(a);
            }
        }
    }

    /// The type axioms `p` needs that `state` has not yet emitted:
    /// `object(X) :- t(X)` for proper types first seen in this delta, and
    /// `sup(X) :- sub(X)` for subtype declarations appended since the
    /// last translation. Updates `state` accordingly.
    pub fn new_type_axioms(&self, p: &Program, state: &mut TranslationState) -> Vec<FoClause> {
        let x = FoTerm::var("X");
        let mut out = Vec::new();
        let sig = p.signature();
        for t in sig.proper_types() {
            if state.axiom_types.insert(t) {
                out.push(FoClause::rule(
                    FoAtom::new(object_type(), vec![x.clone()]),
                    vec![FoAtom::new(t, vec![x.clone()])],
                ));
            }
        }
        let from = state.subtype_axioms.min(p.subtype_decls.len());
        for &(sub, sup) in &p.subtype_decls[from..] {
            out.push(FoClause::rule(
                FoAtom::new(sup, vec![x.clone()]),
                vec![FoAtom::new(sub, vec![x.clone()])],
            ));
        }
        state.subtype_axioms = p.subtype_decls.len();
        state.stats.type_axioms_emitted += out.len() as u64;
        out
    }
}

fn push_unique(out: &mut Vec<FoAtom>, a: FoAtom) {
    if !out.contains(&a) {
        out.push(a);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbol::sym;
    use crate::term::LabelSpec;

    fn tr() -> Transformer {
        Transformer::new()
    }

    #[test]
    fn term_map_erases_structure() {
        let t = Term::molecule(
            Term::typed_app("path", "g", vec![Term::var("X"), Term::var("Y")]),
            vec![LabelSpec::one("length", Term::int(10))],
        )
        .unwrap();
        assert_eq!(
            tr().term(&t),
            FoTerm::App(sym("g"), vec![FoTerm::var("X"), FoTerm::var("Y")])
        );
    }

    #[test]
    fn example_2_determiner_the() {
        // determiner: the[num => {singular, plural}, def => definite]
        // ⇒ determiner(the) ∧ object(singular) ∧ num(the, singular)
        //   ∧ object(plural) ∧ num(the, plural)
        //   ∧ object(definite) ∧ def(the, definite)
        let t = Term::molecule(
            Term::typed_constant("determiner", "the"),
            vec![
                LabelSpec::set(
                    "num",
                    vec![Term::constant("singular"), Term::constant("plural")],
                ),
                LabelSpec::one("def", Term::constant("definite")),
            ],
        )
        .unwrap();
        let conj = tr().atomic(&Atomic::term(t));
        let shown: Vec<String> = conj.iter().map(|a| a.to_string()).collect();
        assert_eq!(
            shown,
            vec![
                "determiner(the)",
                "object(singular)",
                "num(the, singular)",
                "object(plural)",
                "num(the, plural)",
                "object(definite)",
                "def(the, definite)",
            ]
        );
    }

    #[test]
    fn typed_variable_becomes_type_atom() {
        let conj = tr().atomic(&Atomic::term(Term::typed_var("noun_phrase", "X")));
        assert_eq!(
            conj,
            vec![FoAtom::new("noun_phrase", vec![FoTerm::var("X")])]
        );
    }

    #[test]
    fn function_term_types_arguments() {
        // commonnp: np(Det, Noun) ⇒ commonnp(np(Det,Noun)) ∧ object(Det) ∧ object(Noun)
        let t = Term::typed_app("commonnp", "np", vec![Term::var("Det"), Term::var("Noun")]);
        let conj = tr().atomic(&Atomic::term(t));
        let shown: Vec<String> = conj.iter().map(|a| a.to_string()).collect();
        assert_eq!(
            shown,
            vec!["commonnp(np(Det, Noun))", "object(Det)", "object(Noun)"]
        );
    }

    #[test]
    fn predicate_atom_types_then_applies() {
        let a = Atomic::pred(
            "likes",
            vec![Term::typed_var("person", "X"), Term::constant("icecream")],
        );
        let conj = tr().atomic(&a);
        let shown: Vec<String> = conj.iter().map(|x| x.to_string()).collect();
        assert_eq!(
            shown,
            vec!["person(X)", "object(icecream)", "likes(X, icecream)"]
        );
    }

    #[test]
    fn builtin_is_passes_arguments_untyped() {
        // L is L0 + 1
        let a = Atomic::pred(
            "is",
            vec![
                Term::var("L"),
                Term::app("+", vec![Term::var("L0"), Term::int(1)]),
            ],
        );
        let conj = tr().atomic(&a);
        assert_eq!(conj.len(), 1);
        assert_eq!(conj[0].to_string(), "is(L, +(L0, 1))");
        // the pure transformer types everything
        let pure = Transformer::pure().atomic(&a);
        assert!(pure.iter().any(|x| x.pred == object_type()));
        assert!(pure.len() > 1);
    }

    #[test]
    fn molecule_value_translates_recursively() {
        // john[spouse => mary[age => 27]]
        let t = Term::molecule(
            Term::constant("john"),
            vec![LabelSpec::one(
                "spouse",
                Term::molecule(
                    Term::constant("mary"),
                    vec![LabelSpec::one("age", Term::int(27))],
                )
                .unwrap(),
            )],
        )
        .unwrap();
        let shown: Vec<String> = tr()
            .atomic(&Atomic::term(t))
            .iter()
            .map(|a| a.to_string())
            .collect();
        assert_eq!(
            shown,
            vec![
                "object(john)",
                "object(mary)",
                "object(27)",
                "age(mary, 27)",
                "spouse(john, mary)"
            ]
        );
    }

    #[test]
    fn duplicate_conjuncts_are_removed() {
        // X appears twice: object(X) emitted once.
        let a = Atomic::pred("p", vec![Term::var("X"), Term::var("X")]);
        let conj = tr().atomic(&a);
        let shown: Vec<String> = conj.iter().map(|x| x.to_string()).collect();
        assert_eq!(shown, vec!["object(X)", "p(X, X)"]);
    }

    #[test]
    fn proper_np_rule_translation() {
        // propernp: X[pers=>3, num=>singular, def=>definite] :- name: X.
        let head = Atomic::term(
            Term::molecule(
                Term::typed_var("propernp", "X"),
                vec![
                    LabelSpec::one("pers", Term::int(3)),
                    LabelSpec::one("num", Term::constant("singular")),
                    LabelSpec::one("def", Term::constant("definite")),
                ],
            )
            .unwrap(),
        );
        let body = vec![Atomic::term(Term::typed_var("name", "X"))];
        let gc = tr().clause(&DefiniteClause::rule(head, body));
        let heads: Vec<String> = gc.heads.iter().map(|a| a.to_string()).collect();
        assert_eq!(
            heads,
            vec![
                "propernp(X)",
                "object(3)",
                "pers(X, 3)",
                "object(singular)",
                "num(X, singular)",
                "object(definite)",
                "def(X, definite)",
            ]
        );
        let body: Vec<String> = gc.body.iter().map(|a| a.to_string()).collect();
        assert_eq!(body, vec!["name(X)"]);
        // Splitting yields one FO clause per head conjunct.
        assert_eq!(gc.split().len(), 7);
        assert_eq!(gc.split()[0].to_string(), "propernp(X) :- name(X).");
    }

    #[test]
    fn type_axioms_cover_mentioned_types_and_declarations() {
        let mut p = Program::new();
        p.declare_subtype("propernp", "noun_phrase");
        p.push_fact(Atomic::term(Term::typed_constant("name", "john")));
        let axioms = tr().type_axioms(&p);
        let shown: BTreeSet<String> = axioms.iter().map(|c| c.to_string()).collect();
        assert!(shown.contains("object(X) :- name(X)."));
        assert!(shown.contains("object(X) :- propernp(X)."));
        assert!(shown.contains("object(X) :- noun_phrase(X)."));
        assert!(shown.contains("noun_phrase(X) :- propernp(X)."));
        // no axiom for object itself
        assert!(!shown.contains("object(X) :- object(X)."));
    }

    #[test]
    fn whole_program_translation_counts() {
        let mut p = Program::new();
        p.push_fact(Atomic::term(Term::typed_constant("name", "john")));
        p.push_fact(Atomic::term(Term::typed_constant("name", "bob")));
        let fo = tr().program(&p);
        // 1 type axiom (object :- name) + 2 facts
        assert_eq!(fo.len(), 3);
        assert!(fo.clauses.iter().any(|c| c.to_string() == "name(john)."));
    }

    #[test]
    fn query_translation() {
        // :- noun_phrase: X[num => plural].
        let q = Query::new(vec![Atomic::term(
            Term::molecule(
                Term::typed_var("noun_phrase", "X"),
                vec![LabelSpec::one("num", Term::constant("plural"))],
            )
            .unwrap(),
        )]);
        let goals: Vec<String> = tr().query(&q).iter().map(|a| a.to_string()).collect();
        assert_eq!(
            goals,
            vec!["noun_phrase(X)", "object(plural)", "num(X, plural)"]
        );
    }

    #[test]
    fn skolemized_head_types_rule_variables() {
        // path: id(X,Y)[src=>X, dest=>Y, length=>1] :- node: X[linkto=>Y].
        let head = Atomic::term(
            Term::molecule(
                Term::typed_app("path", "id", vec![Term::var("X"), Term::var("Y")]),
                vec![
                    LabelSpec::one("src", Term::var("X")),
                    LabelSpec::one("dest", Term::var("Y")),
                    LabelSpec::one("length", Term::int(1)),
                ],
            )
            .unwrap(),
        );
        let body = vec![Atomic::term(
            Term::molecule(
                Term::typed_var("node", "X"),
                vec![LabelSpec::one("linkto", Term::var("Y"))],
            )
            .unwrap(),
        )];
        let gc = tr().clause(&DefiniteClause::rule(head, body));
        let heads: Vec<String> = gc.heads.iter().map(|a| a.to_string()).collect();
        assert_eq!(
            heads,
            vec![
                "path(id(X, Y))",
                "object(X)",
                "object(Y)",
                "src(id(X, Y), X)",
                "dest(id(X, Y), Y)",
                "object(1)",
                "length(id(X, Y), 1)",
            ]
        );
        let body: Vec<String> = gc.body.iter().map(|a| a.to_string()).collect();
        assert_eq!(body, vec!["node(X)", "object(Y)", "linkto(X, Y)"]);
    }
}
