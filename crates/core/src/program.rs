//! Programs of objects (§4): a finite set of subtype declarations and
//! definite clauses, plus the *signature* scan used by the transformation
//! and the optimizer (which type symbols, labels and predicates occur).

use crate::formula::{Atomic, DefiniteClause, Query};
use crate::hierarchy::{object_type, TypeHierarchy};
use crate::symbol::Symbol;
use crate::term::{IdTerm, Term};
use std::collections::BTreeSet;
use std::fmt;

/// A C-logic program.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Program {
    /// Subtype declarations `t1 < t2`, in source order.
    pub subtype_decls: Vec<(Symbol, Symbol)>,
    /// Definite clauses (facts and rules), in source order.
    pub clauses: Vec<DefiniteClause>,
}

impl Program {
    /// An empty program.
    pub fn new() -> Program {
        Program::default()
    }

    /// Adds a subtype declaration `sub < sup`.
    pub fn declare_subtype(&mut self, sub: impl Into<Symbol>, sup: impl Into<Symbol>) {
        self.subtype_decls.push((sub.into(), sup.into()));
    }

    /// Adds a clause.
    pub fn push(&mut self, c: DefiniteClause) {
        self.clauses.push(c);
    }

    /// Adds a fact.
    pub fn push_fact(&mut self, head: Atomic) {
        self.clauses.push(DefiniteClause::fact(head));
    }

    /// Builds the declared type hierarchy.
    pub fn hierarchy(&self) -> TypeHierarchy {
        let mut h = TypeHierarchy::new();
        for &(sub, sup) in &self.subtype_decls {
            h.declare(sub, sup);
        }
        h
    }

    /// The signature: every type symbol, label, predicate and function
    /// symbol occurring anywhere in the program.
    pub fn signature(&self) -> Signature {
        let mut sig = Signature::default();
        for &(sub, sup) in &self.subtype_decls {
            sig.types.insert(sub);
            sig.types.insert(sup);
        }
        for c in &self.clauses {
            sig.scan_atomic(&c.head);
            for b in &c.body {
                sig.scan_atomic(b);
            }
        }
        sig
    }

    /// Total number of atoms (head + body) across all clauses.
    pub fn atom_count(&self) -> usize {
        self.clauses.iter().map(|c| 1 + c.body.len()).sum()
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for &(sub, sup) in &self.subtype_decls {
            writeln!(f, "{sub} < {sup}.")?;
        }
        for c in &self.clauses {
            writeln!(f, "{c}")?;
        }
        Ok(())
    }
}

/// The non-logical symbols occurring in a program or query.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Signature {
    /// Type symbols, including `object` whenever any typed term occurs.
    pub types: BTreeSet<Symbol>,
    /// Labels.
    pub labels: BTreeSet<Symbol>,
    /// Predicate symbols.
    pub predicates: BTreeSet<Symbol>,
    /// Function symbols (of arity ≥ 1) and symbolic constants.
    pub functions: BTreeSet<Symbol>,
}

impl Signature {
    /// Scans one atomic formula.
    pub fn scan_atomic(&mut self, a: &Atomic) {
        match a {
            Atomic::Pred { pred, args } => {
                self.predicates.insert(*pred);
                for t in args {
                    self.scan_term(t);
                }
            }
            Atomic::Term(t) => self.scan_term(t),
        }
    }

    /// Scans a query.
    pub fn scan_query(&mut self, q: &Query) {
        for g in &q.goals {
            self.scan_atomic(g);
        }
    }

    fn scan_term(&mut self, t: &Term) {
        self.scan_id(t.id_term());
        for s in t.specs() {
            self.labels.insert(s.label);
            for v in s.value.terms() {
                self.scan_term(v);
            }
        }
    }

    fn scan_id(&mut self, id: &IdTerm) {
        self.types.insert(id.ty());
        match id {
            IdTerm::Var { .. } => {}
            IdTerm::Const { c, .. } => {
                if let crate::term::Const::Sym(s) = c {
                    self.functions.insert(*s);
                }
            }
            IdTerm::App { functor, args, .. } => {
                self.functions.insert(*functor);
                for a in args {
                    self.scan_term(a);
                }
            }
        }
    }

    /// Type symbols other than `object` — exactly the symbols for which
    /// the transformation emits `object(X) :- t(X)` axioms (§4).
    pub fn proper_types(&self) -> impl Iterator<Item = Symbol> + '_ {
        self.types.iter().copied().filter(|&t| t != object_type())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbol::sym;
    use crate::term::LabelSpec;

    fn grammar_fragment() -> Program {
        // determiner: the[num => {singular, plural}, def => definite].
        // propernp < noun_phrase.
        let mut p = Program::new();
        p.declare_subtype("propernp", "noun_phrase");
        p.push_fact(Atomic::term(
            Term::molecule(
                Term::typed_constant("determiner", "the"),
                vec![
                    LabelSpec::set(
                        "num",
                        vec![Term::constant("singular"), Term::constant("plural")],
                    ),
                    LabelSpec::one("def", Term::constant("definite")),
                ],
            )
            .unwrap(),
        ));
        p
    }

    #[test]
    fn signature_scan_collects_everything() {
        let p = grammar_fragment();
        let sig = p.signature();
        assert!(sig.types.contains(&sym("determiner")));
        assert!(sig.types.contains(&sym("propernp")));
        assert!(sig.types.contains(&sym("noun_phrase")));
        // the values singular/plural/definite are object-typed constants
        assert!(sig.types.contains(&object_type()));
        assert!(sig.labels.contains(&sym("num")));
        assert!(sig.labels.contains(&sym("def")));
        assert!(sig.functions.contains(&sym("the")));
        assert!(sig.functions.contains(&sym("singular")));
        assert!(sig.predicates.is_empty());
    }

    #[test]
    fn proper_types_excludes_object() {
        let p = grammar_fragment();
        let sig = p.signature();
        let proper: BTreeSet<Symbol> = sig.proper_types().collect();
        assert!(!proper.contains(&object_type()));
        assert!(proper.contains(&sym("determiner")));
    }

    #[test]
    fn hierarchy_from_program() {
        let p = grammar_fragment();
        let h = p.hierarchy();
        assert!(h.is_subtype(sym("propernp"), sym("noun_phrase")));
    }

    #[test]
    fn display_program() {
        let p = grammar_fragment();
        let s = p.to_string();
        assert!(s.starts_with("propernp < noun_phrase.\n"));
        assert!(s.contains("determiner: the[num => {singular, plural}, def => definite]."));
    }

    #[test]
    fn atom_count() {
        let mut p = grammar_fragment();
        assert_eq!(p.atom_count(), 1);
        p.push(DefiniteClause::rule(
            Atomic::pred("q", vec![]),
            vec![Atomic::pred("a", vec![]), Atomic::pred("b", vec![])],
        ));
        assert_eq!(p.atom_count(), 4);
    }

    #[test]
    fn signature_scans_predicates_and_nested_apps() {
        let mut p = Program::new();
        p.push_fact(Atomic::pred(
            "edge",
            vec![Term::app("pair", vec![Term::constant("a"), Term::var("X")])],
        ));
        let sig = p.signature();
        assert!(sig.predicates.contains(&sym("edge")));
        assert!(sig.functions.contains(&sym("pair")));
        assert!(sig.functions.contains(&sym("a")));
    }
}
