//! Static redundancy elimination over generalized logic programs (§4).
//!
//! The translated first-order program "may have certain redundancies,
//! especially in typing predicates". The paper gives two static rules for
//! a generalized definite clause, where `t1 ≤ t2` in the declared type
//! hierarchy:
//!
//! 1. if `t1(a)` and `t2(a)` both appear in the head (or both in the
//!    body), then `t2(a)` can be deleted;
//! 2. if `t1(a)` appears in the head and `t2(a)` in the body with
//!    `t2 ≤ t1`, then `t1(a)` can be deleted from the head.
//!
//! Since every type is ≤ `object`, rule 1 removes `object(a)` wherever a
//! more specific type atom for `a` is at hand, and rule 2 removes head
//! typing atoms that the body already guarantees — reproducing the paper's
//! optimized `common_np` clause exactly.
//!
//! Rules 1–2 are sound only **relative to the type axioms** (`sup(X) :-
//! sub(X)` and `object(X) :- t(X)`), which must therefore be left in the
//! program unoptimized; if every head atom of a clause is deleted, the
//! clause itself is redundant and dropped.
//!
//! The paper also notes "many redundant clauses for `object`" removable by
//! "a little bit more complicated program analysis"; we implement the
//! natural instance: *dead-clause elimination* — iteratively dropping
//! clauses whose body mentions a predicate that no clause can ever derive.

use crate::fol::{FoAtom, FoClause, FoProgram, FoTerm, GeneralizedClause};
use crate::hierarchy::{object_type, TypeHierarchy};
use crate::program::Program;
use crate::symbol::Symbol;
use crate::transform::{TranslationState, TranslationStats, Transformer};
use std::collections::{BTreeSet, HashSet};

/// Applies the §4 rules to generalized clauses of a particular program.
#[derive(Clone, Debug)]
pub struct Optimizer {
    hierarchy: TypeHierarchy,
    type_symbols: BTreeSet<Symbol>,
    builtins: BTreeSet<Symbol>,
}

impl Optimizer {
    /// Builds an optimizer from a program's declarations and signature.
    pub fn new(program: &Program) -> Optimizer {
        let mut type_symbols: BTreeSet<Symbol> = program.signature().types;
        type_symbols.insert(object_type());
        Optimizer {
            hierarchy: program.hierarchy(),
            type_symbols,
            builtins: crate::transform::DEFAULT_BUILTINS
                .iter()
                .map(|s| Symbol::new(s))
                .collect(),
        }
    }

    /// Builds an optimizer from explicit parts (used by tests and by the
    /// bench harness, which generates programs directly).
    pub fn from_parts(hierarchy: TypeHierarchy, mut type_symbols: BTreeSet<Symbol>) -> Optimizer {
        type_symbols.insert(object_type());
        Optimizer {
            hierarchy,
            type_symbols,
            builtins: crate::transform::DEFAULT_BUILTINS
                .iter()
                .map(|s| Symbol::new(s))
                .collect(),
        }
    }

    fn is_type_atom(&self, a: &FoAtom) -> bool {
        a.arity() == 1 && self.type_symbols.contains(&a.pred)
    }

    /// Rule 1 within one atom list: among typing atoms with the same
    /// argument, keep only the ≤-minimal ones (first occurrence wins among
    /// order-equivalent types). Non-typing atoms are untouched; relative
    /// order is preserved.
    pub fn minimize_typing(&self, atoms: &[FoAtom]) -> Vec<FoAtom> {
        let subsumed = |j: usize, b: &FoAtom| {
            atoms.iter().enumerate().any(|(i, a)| {
                i != j
                    && self.is_type_atom(a)
                    && a.args == b.args
                    && self.hierarchy.is_subtype(a.pred, b.pred)
                    // On order-equivalent types (declaration cycles) keep
                    // only the first occurrence.
                    && (!self.hierarchy.is_subtype(b.pred, a.pred) || i < j)
            })
        };
        atoms
            .iter()
            .enumerate()
            .filter(|(j, b)| !self.is_type_atom(b) || !subsumed(*j, b))
            .map(|(_, b)| b.clone())
            .collect()
    }

    /// Rules 1 and 2 on a generalized clause. Returns `None` when every
    /// head atom was deleted (the clause is subsumed by the type axioms).
    pub fn optimize_clause(&self, gc: &GeneralizedClause) -> Option<GeneralizedClause> {
        self.optimize_clause_counted(gc, &mut TranslationStats::default())
    }

    /// [`Optimizer::optimize_clause`], tallying per-rule deletions into
    /// `stats` (`rule1_deletions`, `rule2_deletions`, `clauses_subsumed`).
    pub fn optimize_clause_counted(
        &self,
        gc: &GeneralizedClause,
        stats: &mut TranslationStats,
    ) -> Option<GeneralizedClause> {
        let body = self.minimize_typing(&gc.body);
        let head1 = self.minimize_typing(&gc.heads);
        stats.rule1_deletions +=
            (gc.body.len() - body.len() + gc.heads.len() - head1.len()) as u64;
        let heads_before = head1.len();
        // Rule 2: drop head typing atoms guaranteed by the body.
        let heads: Vec<FoAtom> = head1
            .into_iter()
            .filter(|h| {
                if !self.is_type_atom(h) {
                    return true;
                }
                !body.iter().any(|b| {
                    self.is_type_atom(b)
                        && b.args == h.args
                        && self.hierarchy.is_subtype(b.pred, h.pred)
                })
            })
            .collect();
        stats.rule2_deletions += (heads_before - heads.len()) as u64;
        if heads.is_empty() {
            stats.clauses_subsumed += 1;
            None
        } else {
            Some(GeneralizedClause {
                heads,
                body,
                negative_body: gc.negative_body.clone(),
            })
        }
    }

    /// Rule 3 (the paper's "many redundant clauses for object can be
    /// eliminated", realized at the body level): a body check `object(t)`
    /// is redundant when `t` occurs inside another non-builtin,
    /// non-`object` body atom — every label, predicate and proper-type
    /// fact of a *translated* program is co-derived with `object` facts
    /// for all terms it mentions, so the check is implied. Removing these
    /// checks also removes the `object`-axiom recursion that makes
    /// top-down evaluation with negation diverge.
    pub fn prune_object_checks(&self, atoms: &[FoAtom]) -> Vec<FoAtom> {
        let object = object_type();
        atoms
            .iter()
            .enumerate()
            .filter(|(j, a)| {
                if a.pred != object || a.arity() != 1 {
                    return true;
                }
                !atoms.iter().enumerate().any(|(k, b)| {
                    k != *j
                        && b.pred != object
                        && !self.builtins.contains(&b.pred)
                        && b.args.iter().any(|arg| contains_subterm(arg, &a.args[0]))
                })
            })
            .map(|(_, a)| a.clone())
            .collect()
    }

    /// Full optimized translation of a program: type axioms verbatim, each
    /// generalized clause optimized (rules 1–2 then rule 3 on the body),
    /// split, then dead clauses removed.
    pub fn optimized_program(&self, transformer: &Transformer, p: &Program) -> FoProgram {
        self.optimized_program_with_state(transformer, p).0
    }

    /// Like [`Optimizer::optimized_program`], additionally returning the
    /// [`TranslationState`] needed to later extend the translation with
    /// delta clauses ([`Optimizer::extend_optimized`]).
    ///
    /// When the final dead-clause elimination drops anything, the state is
    /// marked `dropped_clauses`: the emitted program is then not a pure
    /// union of per-clause translations (a later delta could make a
    /// dropped clause derivable again), so callers must fall back to full
    /// re-translation on the next load.
    pub fn optimized_program_with_state(
        &self,
        transformer: &Transformer,
        p: &Program,
    ) -> (FoProgram, TranslationState) {
        let mut state = TranslationState::default();
        let mut out = FoProgram::new();
        self.extend_optimized(transformer, p, &mut out, &mut state);
        let eliminated = eliminate_dead_clauses(&out, transformer);
        if eliminated.len() != out.len() {
            state.dropped_clauses = true;
            state.stats.dead_clauses_removed += (out.len() - eliminated.len()) as u64;
        }
        (eliminated, state)
    }

    /// Incremental optimized translation: translates and optimizes
    /// `p.clauses[state.clauses_done()..]` (rules 1–2 then rule 3,
    /// per clause) and appends the results — plus any not-yet-emitted
    /// type axioms — to `out`, updating `state`.
    ///
    /// The per-clause rules only consult the type hierarchy and the type
    /// symbol set, so this is exact whenever the delta leaves the
    /// hierarchy alone; the *global* dead-clause elimination is **not**
    /// re-run here (it may not be: it could have dropped a clause the
    /// delta resurrects). The precise conditions under which a session
    /// may take this path instead of a full rebuild are enforced by
    /// `clogic::Session` and documented in DESIGN.md §"Incremental
    /// pipeline":
    ///
    /// 1. the delta declares no new subtypes (rules 1–2 of §4 depend on
    ///    the hierarchy, so a new declaration can change how *earlier*
    ///    clauses should have been optimized);
    /// 2. the base translation's dead-clause elimination dropped nothing
    ///    (`!state.dropped_clauses`);
    /// 3. the cumulative program is negation-free (with negation, a
    ///    clause kept here but droppable by the global analysis could
    ///    change stratifiability).
    ///
    /// Under those conditions the only divergence from a from-scratch
    /// optimized build is that delta clauses skip dead-clause
    /// elimination — inert for definite programs — and that new *type
    /// symbols* introduced by the delta did not inform the optimization
    /// of earlier clauses, which affects how many redundant typing atoms
    /// survive but never the answer set (rules 1–3 are
    /// semantics-preserving relative to the axioms, which stay).
    pub fn extend_optimized(
        &self,
        transformer: &Transformer,
        p: &Program,
        out: &mut FoProgram,
        state: &mut TranslationState,
    ) {
        let mut aux = Vec::new();
        let from = state.clauses_done().min(p.clauses.len());
        state.stats.clauses_transformed += (p.clauses.len() - from) as u64;
        for c in &p.clauses[from..] {
            let gc = transformer.clause_with_aux(c, &mut aux, state.aux_counter_mut());
            let mut per_clause = TranslationStats::default();
            if let Some(mut opt) = self.optimize_clause_counted(&gc, &mut per_clause) {
                let body_before = opt.body.len();
                opt.body = self.prune_object_checks(&opt.body);
                per_clause.rule3_object_prunes += (body_before - opt.body.len()) as u64;
                for cl in opt.split() {
                    if state.emit(&cl) {
                        out.push(cl);
                    }
                }
            }
            state.stats.rule1_deletions += per_clause.rule1_deletions;
            state.stats.rule2_deletions += per_clause.rule2_deletions;
            state.stats.rule3_object_prunes += per_clause.rule3_object_prunes;
            state.stats.clauses_subsumed += per_clause.clauses_subsumed;
        }
        state.stats.aux_clauses += aux.len() as u64;
        state.set_clauses_done(p.clauses.len());
        // Axioms last: top-down engines should reach facts first.
        let mut axioms = transformer.new_type_axioms(p, state);
        axioms.extend(aux);
        for a in axioms {
            if state.emit(&a) {
                out.push(a);
            }
        }
    }
}

/// Iteratively removes clauses whose body mentions a predicate that no
/// remaining clause derives and that is not evaluable. The type axiom
/// `object(X) :- t(X)` disappears, for instance, when nothing ever
/// derives `t`.
pub fn eliminate_dead_clauses(p: &FoProgram, transformer: &Transformer) -> FoProgram {
    let mut clauses: Vec<FoClause> = p.clauses.clone();
    loop {
        let derivable: HashSet<(Symbol, usize)> = clauses
            .iter()
            .map(|c| (c.head.pred, c.head.arity()))
            .collect();
        let before = clauses.len();
        clauses.retain(|c| {
            c.body
                .iter()
                .all(|b| transformer.is_builtin(b.pred) || derivable.contains(&(b.pred, b.arity())))
        });
        if clauses.len() == before {
            break;
        }
    }
    FoProgram { clauses }
}

/// Convenience: counts typing atoms (unary atoms over the given type
/// symbols) in a program — the quantity the §4 optimization shrinks,
/// reported by experiment E3.
pub fn typing_atom_count(p: &FoProgram, type_symbols: &BTreeSet<Symbol>) -> usize {
    let is_type = |a: &FoAtom| a.arity() == 1 && type_symbols.contains(&a.pred);
    p.clauses
        .iter()
        .map(|c| usize::from(is_type(&c.head)) + c.body.iter().filter(|b| is_type(b)).count())
        .sum()
}

/// Helper for tests/benches: a unary atom `t(X)`.
pub fn type_atom(t: impl Into<Symbol>, arg: FoTerm) -> FoAtom {
    FoAtom::new(t, vec![arg])
}

/// Whether `needle` occurs in `haystack` (as the term itself or any
/// subterm).
fn contains_subterm(haystack: &FoTerm, needle: &FoTerm) -> bool {
    if haystack == needle {
        return true;
    }
    match haystack {
        FoTerm::App(_, args) => args.iter().any(|a| contains_subterm(a, needle)),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::formula::{Atomic, DefiniteClause};
    use crate::symbol::sym;
    use crate::term::{LabelSpec, Term};

    fn grammar_program() -> Program {
        // The Example 3 fragment that exercises the optimization.
        let mut p = Program::new();
        p.declare_subtype("propernp", "noun_phrase");
        p.declare_subtype("commonnp", "noun_phrase");
        p.push_fact(Atomic::term(Term::typed_constant("name", "john")));
        p.push_fact(Atomic::term(
            Term::molecule(
                Term::typed_constant("determiner", "the"),
                vec![
                    LabelSpec::set(
                        "num",
                        vec![Term::constant("singular"), Term::constant("plural")],
                    ),
                    LabelSpec::one("def", Term::constant("definite")),
                ],
            )
            .unwrap(),
        ));
        p.push_fact(Atomic::term(
            Term::molecule(
                Term::typed_constant("noun", "students"),
                vec![LabelSpec::one("num", Term::constant("plural"))],
            )
            .unwrap(),
        ));
        // commonnp rule
        p.push(DefiniteClause::rule(
            Atomic::term(
                Term::molecule(
                    Term::typed_app("commonnp", "np", vec![Term::var("Det"), Term::var("Noun")]),
                    vec![
                        LabelSpec::one("pers", Term::int(3)),
                        LabelSpec::one("num", Term::var("N")),
                        LabelSpec::one("def", Term::var("D")),
                    ],
                )
                .unwrap(),
            ),
            vec![
                Atomic::term(
                    Term::molecule(
                        Term::typed_var("determiner", "Det"),
                        vec![
                            LabelSpec::one("num", Term::var("N")),
                            LabelSpec::one("def", Term::var("D")),
                        ],
                    )
                    .unwrap(),
                ),
                Atomic::term(
                    Term::molecule(
                        Term::typed_var("noun", "Noun"),
                        vec![LabelSpec::one("num", Term::var("N"))],
                    )
                    .unwrap(),
                ),
            ],
        ));
        // noun_phrase: X :- propernp: X.
        p.push(DefiniteClause::rule(
            Atomic::term(Term::typed_var("noun_phrase", "X")),
            vec![Atomic::term(Term::typed_var("propernp", "X"))],
        ));
        p
    }

    #[test]
    fn paper_common_np_optimization() {
        let p = grammar_program();
        let tr = Transformer::new();
        let opt = Optimizer::new(&p);
        let gc = tr.clause(&p.clauses[3]);
        let optimized = opt.optimize_clause(&gc).unwrap();
        let heads: Vec<String> = optimized.heads.iter().map(|a| a.to_string()).collect();
        // Exactly the paper's optimized definition for common_np.
        assert_eq!(
            heads,
            vec![
                "commonnp(np(Det, Noun))",
                "object(3)",
                "pers(np(Det, Noun), 3)",
                "num(np(Det, Noun), N)",
                "def(np(Det, Noun), D)",
            ]
        );
        let body: Vec<String> = optimized.body.iter().map(|a| a.to_string()).collect();
        assert_eq!(
            body,
            vec![
                "determiner(Det)",
                "object(N)",
                "num(Det, N)",
                "object(D)",
                "def(Det, D)",
                "noun(Noun)",
                "num(Noun, N)",
            ]
        );
    }

    #[test]
    fn rule1_keeps_most_specific_type() {
        let mut p = Program::new();
        p.declare_subtype("student", "person");
        let opt = Optimizer::new(&p);
        let atoms = vec![
            type_atom("person", FoTerm::var("X")),
            type_atom("student", FoTerm::var("X")),
            FoAtom::new("age", vec![FoTerm::var("X"), FoTerm::int(20)]),
        ];
        let out = opt.minimize_typing(&atoms);
        let shown: Vec<String> = out.iter().map(|a| a.to_string()).collect();
        assert_eq!(shown, vec!["student(X)", "age(X, 20)"]);
    }

    #[test]
    fn rule1_ignores_different_arguments() {
        let p = Program::new();
        let opt = Optimizer::new(&p);
        let atoms = vec![
            type_atom("object", FoTerm::var("X")),
            type_atom("object", FoTerm::var("Y")),
        ];
        assert_eq!(opt.minimize_typing(&atoms).len(), 2);
    }

    #[test]
    fn rule1_order_equivalent_types_keep_first() {
        let mut p = Program::new();
        p.declare_subtype("a", "b");
        p.declare_subtype("b", "a"); // declaration cycle: order-equivalent
        let opt = Optimizer::new(&p);
        let atoms = vec![
            type_atom("b", FoTerm::var("X")),
            type_atom("a", FoTerm::var("X")),
        ];
        let out = opt.minimize_typing(&atoms);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].pred, sym("b"));
    }

    #[test]
    fn rule2_drops_head_atoms_guaranteed_by_body() {
        let mut p = Program::new();
        p.declare_subtype("student", "person");
        let opt = Optimizer::new(&p);
        let gc = GeneralizedClause {
            heads: vec![
                FoAtom::new("grade", vec![FoTerm::var("X"), FoTerm::constant("a")]),
                type_atom("person", FoTerm::var("X")),
            ],
            body: vec![type_atom("student", FoTerm::var("X"))],
            negative_body: Vec::new(),
        };
        let out = opt.optimize_clause(&gc).unwrap();
        assert_eq!(out.heads.len(), 1);
        assert_eq!(out.heads[0].pred, sym("grade"));
    }

    #[test]
    fn clause_fully_subsumed_by_axioms_is_dropped() {
        // noun_phrase: X :- propernp: X. is redundant given the axiom.
        let p = grammar_program();
        let tr = Transformer::new();
        let opt = Optimizer::new(&p);
        let gc = tr.clause(&p.clauses[4]);
        assert!(opt.optimize_clause(&gc).is_none());
    }

    #[test]
    fn optimized_program_is_smaller_and_object_heads_shrink() {
        let p = grammar_program();
        let tr = Transformer::new();
        let opt = Optimizer::new(&p);
        let plain = tr.program(&p);
        let optimized = opt.optimized_program(&tr, &p);
        assert!(
            optimized.len() < plain.len(),
            "{} !< {}",
            optimized.len(),
            plain.len()
        );
        let types: BTreeSet<Symbol> = p.signature().types;
        assert!(typing_atom_count(&optimized, &types) < typing_atom_count(&plain, &types));
    }

    #[test]
    fn dead_clause_elimination() {
        let tr = Transformer::new();
        let mut p = FoProgram::new();
        // object(X) :- ghost(X).  — ghost is never derivable.
        p.push(FoClause::rule(
            type_atom("object", FoTerm::var("X")),
            vec![type_atom("ghost", FoTerm::var("X"))],
        ));
        p.push(FoClause::fact(FoAtom::new(
            "name",
            vec![FoTerm::constant("john")],
        )));
        // p(X) :- object(X). — becomes dead once the first clause dies.
        p.push(FoClause::rule(
            FoAtom::new("p", vec![FoTerm::var("X")]),
            vec![type_atom("object", FoTerm::var("X"))],
        ));
        let out = eliminate_dead_clauses(&p, &tr);
        assert_eq!(out.len(), 1);
        assert_eq!(out.clauses[0].head.pred, sym("name"));
    }

    #[test]
    fn dead_clause_elimination_keeps_builtins() {
        let tr = Transformer::new();
        let mut p = FoProgram::new();
        p.push(FoClause::fact(FoAtom::new("n", vec![FoTerm::int(1)])));
        p.push(FoClause::rule(
            FoAtom::new("succ", vec![FoTerm::var("Y")]),
            vec![
                FoAtom::new("n", vec![FoTerm::var("X")]),
                FoAtom::new(
                    "is",
                    vec![
                        FoTerm::var("Y"),
                        FoTerm::app("+", vec![FoTerm::var("X"), FoTerm::int(1)]),
                    ],
                ),
            ],
        ));
        let out = eliminate_dead_clauses(&p, &tr);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn optimization_preserves_non_typing_atoms() {
        let p = Program::new();
        let opt = Optimizer::new(&p);
        let gc = GeneralizedClause {
            heads: vec![FoAtom::new(
                "edge",
                vec![FoTerm::var("X"), FoTerm::var("Y")],
            )],
            body: vec![FoAtom::new("raw", vec![FoTerm::var("X"), FoTerm::var("Y")])],
            negative_body: Vec::new(),
        };
        let out = opt.optimize_clause(&gc).unwrap();
        assert_eq!(out, gc);
    }
}
