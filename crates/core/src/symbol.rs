//! Global string interning.
//!
//! Every non-logical symbol of a language of objects — function symbols,
//! predicate symbols, labels, type symbols — as well as every variable
//! name is interned into a process-wide table. A [`Symbol`] is a 4-byte
//! handle; equality and hashing are integer operations, which matters
//! because unification and fact indexing compare symbols constantly.
//!
//! The interner is append-only: symbols are never freed. This is the usual
//! trade-off for logic engines, where the set of distinct symbols is small
//! and stable relative to the number of terms built over them.

use std::collections::HashMap;
use std::fmt;
use std::sync::{OnceLock, RwLock};

/// An interned string. Cheap to copy, compare and hash.
///
/// Two `Symbol`s are equal iff the strings they intern are equal, process
/// wide. Use [`Symbol::new`] to intern and [`Symbol::as_str`] to resolve.
/// Ordering is lexicographic on the interned string, so sorted collections
/// of symbols read naturally and canonical forms are stable across runs.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Symbol(u32);

impl Ord for Symbol {
    fn cmp(&self, other: &Symbol) -> std::cmp::Ordering {
        if self.0 == other.0 {
            return std::cmp::Ordering::Equal;
        }
        self.as_str().cmp(other.as_str())
    }
}

impl PartialOrd for Symbol {
    fn partial_cmp(&self, other: &Symbol) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

struct Interner {
    /// Map from string to handle.
    map: HashMap<Box<str>, u32>,
    /// Handle to string; index is the `Symbol` payload.
    strings: Vec<&'static str>,
}

impl Interner {
    fn new() -> Self {
        Interner {
            map: HashMap::new(),
            strings: Vec::new(),
        }
    }

    fn intern(&mut self, s: &str) -> u32 {
        if let Some(&id) = self.map.get(s) {
            return id;
        }
        let boxed: Box<str> = s.into();
        // Leak a stable copy so `as_str` can hand out `&'static str`
        // without holding the lock. Interned strings live for the process
        // lifetime by design.
        let leaked: &'static str = Box::leak(boxed.clone());
        let id = self.strings.len() as u32;
        self.strings.push(leaked);
        self.map.insert(boxed, id);
        id
    }
}

fn interner() -> &'static RwLock<Interner> {
    static INTERNER: OnceLock<RwLock<Interner>> = OnceLock::new();
    INTERNER.get_or_init(|| RwLock::new(Interner::new()))
}

impl Symbol {
    /// Intern `s`, returning its handle. Idempotent.
    pub fn new(s: &str) -> Symbol {
        // Fast path: read lock only.
        if let Some(&id) = interner().read().expect("interner lock poisoned").map.get(s) {
            return Symbol(id);
        }
        Symbol(interner().write().expect("interner lock poisoned").intern(s))
    }

    /// Resolve the handle back to the interned string.
    pub fn as_str(self) -> &'static str {
        interner().read().expect("interner lock poisoned").strings[self.0 as usize]
    }

    /// The raw index of this symbol in the intern table. Stable for the
    /// process lifetime; useful as a dense array key.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Symbol({:?})", self.as_str())
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl From<&str> for Symbol {
    fn from(s: &str) -> Symbol {
        Symbol::new(s)
    }
}

impl From<String> for Symbol {
    fn from(s: String) -> Symbol {
        Symbol::new(&s)
    }
}

/// Interns `s` — shorthand for [`Symbol::new`] used pervasively in tests
/// and examples.
pub fn sym(s: &str) -> Symbol {
    Symbol::new(s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn interning_is_idempotent() {
        let a = Symbol::new("john");
        let b = Symbol::new("john");
        assert_eq!(a, b);
        assert_eq!(a.as_str(), "john");
    }

    #[test]
    fn distinct_strings_distinct_symbols() {
        assert_ne!(Symbol::new("src"), Symbol::new("dest"));
    }

    #[test]
    fn empty_string_interns() {
        let e = Symbol::new("");
        assert_eq!(e.as_str(), "");
        assert_eq!(e, Symbol::new(""));
    }

    #[test]
    fn display_and_debug() {
        let s = sym("path");
        assert_eq!(format!("{s}"), "path");
        assert_eq!(format!("{s:?}"), "Symbol(\"path\")");
    }

    #[test]
    fn from_impls() {
        let a: Symbol = "node".into();
        let b: Symbol = String::from("node").into();
        assert_eq!(a, b);
    }

    #[test]
    fn ordering_is_lexicographic() {
        // Intern in reverse order to prove ordering ignores intern ids.
        let b = sym("zz-order-test");
        let a = sym("aa-order-test");
        assert!(a < b);
        assert_eq!(a.cmp(&a), std::cmp::Ordering::Equal);
    }

    #[test]
    fn concurrent_interning_agrees() {
        let handles: Vec<_> = (0..8)
            .map(|_| thread::spawn(|| Symbol::new("concurrent-symbol")))
            .collect();
        let ids: Vec<Symbol> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert!(ids.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn unicode_symbols() {
        let s = sym("père");
        assert_eq!(s.as_str(), "père");
    }
}
