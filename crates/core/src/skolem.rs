//! Skolemization of existential object variables (§2.1).
//!
//! Entity-creating rules contain object variables that occur only in the
//! head, e.g. `C` in
//!
//! ```text
//! path: C[src ⇒ X, dest ⇒ Y, length ⇒ 1] :- node: X[linkto ⇒ Y].
//! ```
//!
//! Such a `C` is existentially quantified, but the rule does not say with
//! respect to *which* universals — path objects may be determined by the
//! end nodes only (`∀X∀Y∃C`), by the ends and the length (`∀X∀Y∀L∃C`), or
//! by the whole node sequence. C-logic resolves the ambiguity by letting
//! identities be constructed terms: the user (or the system, through this
//! module's high-level interface) replaces `C` with a skolem term such as
//! `id(X,Y)` whose arguments are exactly the determining variables.

use crate::formula::{Atomic, DefiniteClause};
use crate::program::Program;
use crate::symbol::Symbol;
use crate::term::{IdTerm, LabelSpec, Term};
use std::collections::BTreeSet;

/// A skolemization decision for one existential object variable of one
/// clause: replace `var` with `functor(deps…)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SkolemSpec {
    /// The existential object variable to eliminate.
    pub var: Symbol,
    /// The skolem function symbol (must be fresh in the program).
    pub functor: Symbol,
    /// The determining variables, in order. May be empty: the object is
    /// then a single constant-like entity (`functor` itself).
    pub deps: Vec<Symbol>,
}

impl SkolemSpec {
    /// Builds a spec.
    pub fn new(
        var: impl Into<Symbol>,
        functor: impl Into<Symbol>,
        deps: Vec<Symbol>,
    ) -> SkolemSpec {
        SkolemSpec {
            var: var.into(),
            functor: functor.into(),
            deps,
        }
    }

    /// The replacement identity term for an occurrence asserted at `ty`.
    fn replacement(&self, ty: Symbol) -> IdTerm {
        if self.deps.is_empty() {
            IdTerm::Const {
                ty,
                c: crate::term::Const::Sym(self.functor),
            }
        } else {
            IdTerm::App {
                ty,
                functor: self.functor,
                args: self.deps.iter().map(|&d| Term::var(d)).collect(),
            }
        }
    }
}

/// Replaces every occurrence of `spec.var` in `t` by the skolem term. The
/// asserted type of each occurrence is preserved (`path: C` becomes
/// `path: id(X,Y)`).
pub fn skolemize_term(t: &Term, spec: &SkolemSpec) -> Term {
    match t {
        Term::Id(id) => Term::Id(skolemize_id(id, spec)),
        Term::Molecule { head, specs } => Term::Molecule {
            head: skolemize_id(head, spec),
            specs: specs
                .iter()
                .map(|s| LabelSpec {
                    label: s.label,
                    value: match &s.value {
                        crate::term::LabelValue::One(v) => {
                            crate::term::LabelValue::One(skolemize_term(v, spec))
                        }
                        crate::term::LabelValue::Set(vs) => crate::term::LabelValue::Set(
                            vs.iter().map(|v| skolemize_term(v, spec)).collect(),
                        ),
                    },
                })
                .collect(),
        },
    }
}

fn skolemize_id(id: &IdTerm, spec: &SkolemSpec) -> IdTerm {
    match id {
        IdTerm::Var { ty, name } if *name == spec.var => spec.replacement(*ty),
        IdTerm::Var { .. } | IdTerm::Const { .. } => id.clone(),
        IdTerm::App { ty, functor, args } => IdTerm::App {
            ty: *ty,
            functor: *functor,
            args: args.iter().map(|a| skolemize_term(a, spec)).collect(),
        },
    }
}

/// Applies one skolemization to a whole clause (head and body).
pub fn skolemize_clause(c: &DefiniteClause, spec: &SkolemSpec) -> DefiniteClause {
    let map_atomic = |a: &Atomic| match a {
        Atomic::Term(t) => Atomic::Term(skolemize_term(t, spec)),
        Atomic::Pred { pred, args } => Atomic::Pred {
            pred: *pred,
            args: args.iter().map(|t| skolemize_term(t, spec)).collect(),
        },
    };
    DefiniteClause {
        head: map_atomic(&c.head),
        body: c.body.iter().map(map_atomic).collect(),
        neg_body: c.neg_body.iter().map(map_atomic).collect(),
    }
}

/// The complete skolem-numbering state of a cumulative-loading session,
/// in serializable form — what must survive a restart for recovered
/// sessions to mint the *same* `skN` identities (oid stability: a skolem
/// term **is** the identity of the object it creates, so regenerating it
/// differently changes the database).
///
/// `counter` is the last `N` tried by [`auto_skolemize_from`]; `taken` is
/// the set of function symbols already present in loaded text (user
/// functors and previously minted skolems alike), which fresh names must
/// avoid.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SkolemState {
    /// Last skolem number tried; fresh names continue at `counter + 1`.
    pub counter: usize,
    /// Function symbols that must not be reused as skolem functors.
    pub taken: BTreeSet<Symbol>,
}

impl SkolemState {
    /// A line-oriented text encoding: the counter on the first line, one
    /// taken name per following line. Stable and human-auditable; newline
    /// cannot occur inside a symbol, so no escaping is needed.
    pub fn encode(&self) -> String {
        let mut out = self.counter.to_string();
        for name in &self.taken {
            out.push('\n');
            out.push_str(&name.to_string());
        }
        out
    }

    /// Decodes [`SkolemState::encode`]'s output; `None` on any deviation.
    pub fn decode(text: &str) -> Option<SkolemState> {
        let mut lines = text.lines();
        let counter: usize = lines.next()?.parse().ok()?;
        let mut taken = BTreeSet::new();
        for line in lines {
            if line.is_empty() {
                return None;
            }
            taken.insert(Symbol::new(line));
        }
        Some(SkolemState { counter, taken })
    }
}

/// Report of one automatic skolemization, so callers can tell the user
/// which identity semantics was chosen.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SkolemReport {
    /// Index of the affected clause in the program.
    pub clause_index: usize,
    /// The decision applied.
    pub spec: SkolemSpec,
}

/// The high-level interface of §2.1: the user specifies only *what
/// determines the objects*; identity construction is left to the system.
///
/// For every clause and every head-only variable `C`, replaces `C` with
/// `skN(D1,…,Dk)` where `skN` is a fresh function symbol and the `Di` are
/// the *default* determining variables: every other head variable that
/// also occurs in the body, in alphabetical order. (For the paper's second
/// path rule this yields the "ends plus length" semantics; pass explicit
/// [`SkolemSpec`]s via [`skolemize_clause`] for the other choices.)
///
/// Facts with head-only variables are left alone — a non-ground fact is
/// not entity-creating in the paper's sense, and there are no determining
/// variables to use.
pub fn auto_skolemize(p: &Program) -> (Program, Vec<SkolemReport>) {
    auto_skolemize_from(p, &mut 0, &BTreeSet::new())
}

/// Like [`auto_skolemize`], continuing from an external numbering state —
/// the interface for *cumulative* loading, where each delta is
/// skolemized on its own but the `skN` identities must come out exactly
/// as if the combined program had been skolemized in one pass (oid
/// stability: `id(...)` terms are object identities, and answers about
/// objects created by an earlier load must keep naming them the same
/// way).
///
/// `counter` carries the numbering across deltas (it holds the last `N`
/// tried; fresh names continue at `N+1`) and `taken` lists function
/// symbols already present in previously loaded program text — both user
/// functors and previously generated skolems — which must not be reused.
/// Symbols of the *delta itself* are avoided via its own signature, as in
/// the single-shot path.
///
/// One divergence from single-pass skolemization is inherent: if a later
/// delta *textually* uses a name `skN` that single-pass freshness would
/// have skipped but the split run had already assigned (or vice versa),
/// the numberings differ. Callers that need exact equivalence should
/// avoid literal `skN` symbols in source programs.
pub fn auto_skolemize_from(
    p: &Program,
    counter: &mut usize,
    taken: &BTreeSet<Symbol>,
) -> (Program, Vec<SkolemReport>) {
    let sig = p.signature();
    let mut fresh = || loop {
        *counter += 1;
        let name = Symbol::new(&format!("sk{counter}"));
        if !sig.functions.contains(&name) && !taken.contains(&name) {
            return name;
        }
    };
    let mut out = Program {
        subtype_decls: p.subtype_decls.clone(),
        clauses: Vec::new(),
    };
    let mut reports = Vec::new();
    for (i, c) in p.clauses.iter().enumerate() {
        if c.is_fact() {
            out.push(c.clone());
            continue;
        }
        let mut body_vars = BTreeSet::new();
        for b in &c.body {
            b.collect_vars(&mut body_vars);
        }
        let mut head_vars = BTreeSet::new();
        c.head.collect_vars(&mut head_vars);
        let deps: Vec<Symbol> = head_vars.intersection(&body_vars).copied().collect();
        let mut clause = c.clone();
        for var in c.head_only_vars() {
            let spec = SkolemSpec {
                var,
                functor: fresh(),
                deps: deps.clone(),
            };
            clause = skolemize_clause(&clause, &spec);
            reports.push(SkolemReport {
                clause_index: i,
                spec,
            });
        }
        out.push(clause);
    }
    (out, reports)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbol::sym;

    fn path_rule_1() -> DefiniteClause {
        DefiniteClause::rule(
            Atomic::term(
                Term::molecule(
                    Term::typed_var("path", "C"),
                    vec![
                        LabelSpec::one("src", Term::var("X")),
                        LabelSpec::one("dest", Term::var("Y")),
                        LabelSpec::one("length", Term::int(1)),
                    ],
                )
                .unwrap(),
            ),
            vec![Atomic::term(
                Term::molecule(
                    Term::typed_var("node", "X"),
                    vec![LabelSpec::one("linkto", Term::var("Y"))],
                )
                .unwrap(),
            )],
        )
    }

    #[test]
    fn paper_path_rule_ends_only() {
        // Explicit user choice: path objects determined by the end nodes.
        let spec = SkolemSpec::new("C", "id", vec![sym("X"), sym("Y")]);
        let out = skolemize_clause(&path_rule_1(), &spec);
        assert_eq!(
            out.to_string(),
            "path: id(X, Y)[src => X, dest => Y, length => 1] :- node: X[linkto => Y]."
        );
    }

    #[test]
    fn occurrence_type_is_preserved() {
        let spec = SkolemSpec::new("C", "id", vec![sym("X")]);
        let t = Term::typed_var("path", "C");
        let out = skolemize_term(&t, &spec);
        assert_eq!(out.ty(), sym("path"));
        assert_eq!(out.to_string(), "path: id(X)");
    }

    #[test]
    fn zero_dependency_skolem_is_a_constant() {
        let spec = SkolemSpec::new("C", "the_one", vec![]);
        let out = skolemize_term(&Term::var("C"), &spec);
        assert_eq!(out, Term::constant("the_one"));
    }

    #[test]
    fn skolemize_reaches_nested_positions() {
        let spec = SkolemSpec::new("C", "id", vec![sym("X")]);
        let t = Term::molecule(
            Term::app("wrap", vec![Term::var("C")]),
            vec![LabelSpec::set("vals", vec![Term::var("C"), Term::var("D")])],
        )
        .unwrap();
        let out = skolemize_term(&t, &spec);
        assert_eq!(out.to_string(), "wrap(id(X))[vals => {id(X), D}]");
    }

    #[test]
    fn other_variables_untouched() {
        let spec = SkolemSpec::new("C", "id", vec![sym("X")]);
        let out = skolemize_term(&Term::var("D"), &spec);
        assert_eq!(out, Term::var("D"));
    }

    #[test]
    fn auto_skolemize_path_rules() {
        // Default dependency: head vars shared with the body.
        let mut p = Program::new();
        p.push(path_rule_1());
        let (out, reports) = auto_skolemize(&p);
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].clause_index, 0);
        assert_eq!(reports[0].spec.var, sym("C"));
        assert_eq!(reports[0].spec.deps, vec![sym("X"), sym("Y")]);
        // The rewritten head carries the skolem term.
        let head = out.clauses[0].head.to_string();
        assert!(head.starts_with("path: sk1(X, Y)["), "{head}");
        // No head-only variables remain.
        assert!(out.clauses[0].head_only_vars().is_empty());
    }

    #[test]
    fn auto_skolemize_second_path_rule_depends_on_ends_and_length() {
        // path: C[src=>X,dest=>Y,length=>L] :- node: X[linkto=>Z],
        //     path: CO[src=>Z,dest=>Y,length=>LO], L is LO + 1.
        let rule = DefiniteClause::rule(
            Atomic::term(
                Term::molecule(
                    Term::typed_var("path", "C"),
                    vec![
                        LabelSpec::one("src", Term::var("X")),
                        LabelSpec::one("dest", Term::var("Y")),
                        LabelSpec::one("length", Term::var("L")),
                    ],
                )
                .unwrap(),
            ),
            vec![
                Atomic::term(
                    Term::molecule(
                        Term::typed_var("node", "X"),
                        vec![LabelSpec::one("linkto", Term::var("Z"))],
                    )
                    .unwrap(),
                ),
                Atomic::term(
                    Term::molecule(
                        Term::typed_var("path", "CO"),
                        vec![
                            LabelSpec::one("src", Term::var("Z")),
                            LabelSpec::one("dest", Term::var("Y")),
                            LabelSpec::one("length", Term::var("LO")),
                        ],
                    )
                    .unwrap(),
                ),
                Atomic::pred(
                    "is",
                    vec![
                        Term::var("L"),
                        Term::app("+", vec![Term::var("LO"), Term::int(1)]),
                    ],
                ),
            ],
        );
        let mut p = Program::new();
        p.push(rule);
        let (_, reports) = auto_skolemize(&p);
        assert_eq!(reports.len(), 1);
        // head vars shared with body: L, X, Y (alphabetical).
        assert_eq!(reports[0].spec.deps, vec![sym("L"), sym("X"), sym("Y")]);
    }

    #[test]
    fn auto_skolemize_avoids_captured_functor_names() {
        let mut p = Program::new();
        // sk1 already taken by the user.
        p.push_fact(Atomic::term(Term::constant("sk1")));
        p.push(path_rule_1());
        let (_, reports) = auto_skolemize(&p);
        assert_eq!(reports[0].spec.functor, sym("sk2"));
    }

    #[test]
    fn auto_skolemize_from_threads_counter_and_taken_set() {
        let mut first = Program::new();
        first.push(path_rule_1());
        let mut counter = 0usize;
        let mut taken = BTreeSet::new();
        let (out1, reports1) = auto_skolemize_from(&first, &mut counter, &taken);
        assert_eq!(reports1[0].spec.functor, sym("sk1"));

        // A second delta must not reuse sk1 even though its own signature
        // does not mention it: the session records prior functors in
        // `taken` and threads `counter` forward.
        taken.extend(out1.signature().functions);
        let mut second = Program::new();
        second.push(path_rule_1());
        let (_, reports2) = auto_skolemize_from(&second, &mut counter, &taken);
        assert_eq!(reports2[0].spec.functor, sym("sk2"));
    }

    #[test]
    fn skolem_state_roundtrips() {
        let state = SkolemState {
            counter: 42,
            taken: BTreeSet::from([sym("sk1"), sym("id"), sym("np")]),
        };
        assert_eq!(SkolemState::decode(&state.encode()), Some(state));
        let empty = SkolemState::default();
        assert_eq!(SkolemState::decode(&empty.encode()), Some(empty));
        assert_eq!(SkolemState::decode(""), None);
        assert_eq!(SkolemState::decode("not-a-number"), None);
    }

    #[test]
    fn facts_are_left_alone() {
        let mut p = Program::new();
        p.push_fact(Atomic::term(Term::var("X")));
        let (out, reports) = auto_skolemize(&p);
        assert!(reports.is_empty());
        assert_eq!(out.clauses, p.clauses);
    }

    #[test]
    fn ground_rules_unchanged() {
        let mut p = Program::new();
        p.push(DefiniteClause::rule(
            Atomic::pred("q", vec![Term::constant("a")]),
            vec![Atomic::pred("r", vec![Term::constant("a")])],
        ));
        let (out, reports) = auto_skolemize(&p);
        assert!(reports.is_empty());
        assert_eq!(out.clauses, p.clauses);
    }
}
