//! Compilation of C-logic programs into the direct engine's runtime form.
//!
//! The direct engine does **not** flatten molecules into binary label
//! relations; it keeps each molecule as one *molecular goal* — the
//! clustering the user wrote down (§4). Compilation:
//!
//! * nested molecule values are lifted: `john[spouse ⇒ mary[age ⇒ 27]]`
//!   becomes the goal `john[spouse ⇒ mary]` plus the extra goal
//!   `mary[age ⇒ 27]`;
//! * collection values expand into multiple pairs under one label;
//! * rule heads become multi-head clauses (one head goal per lifted
//!   molecule), the direct analogue of the paper's generalized clauses;
//! * ground facts are merged into the clustered [`ObjectStore`]; ordinary
//!   predicate facts go to a tuple store.

use crate::store::ObjectStore;
use clogic_core::formula::Atomic;
use clogic_core::hierarchy::TypeHierarchy;
use clogic_core::program::Program;
use clogic_core::symbol::Symbol;
use clogic_core::term::{IdTerm, Term};
use folog::facts::FactStore;
use folog::rterm::{RTerm, VarAlloc, VarId};
use folog::TermStore;
use std::collections::{BTreeSet, HashMap};
use std::fmt;

/// A molecular goal: one object's type plus a set of label pieces.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MolGoal {
    /// The asserted type.
    pub ty: Symbol,
    /// The identity term.
    pub id: RTerm,
    /// Label pieces `(label, value)`; values are identity terms (nested
    /// molecules are lifted at compilation).
    pub specs: Vec<(Symbol, RTerm)>,
    /// Residuals produced while resolving against the clustered store are
    /// marked rules-only: the store has already said everything it knows
    /// about this object, so re-consulting it would duplicate derivations.
    pub rules_only: bool,
}

impl MolGoal {
    /// Number of pieces: the type piece plus one per label pair.
    pub fn piece_count(&self) -> usize {
        1 + self.specs.len()
    }
}

impl fmt::Display for MolGoal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.ty, self.id)?;
        if !self.specs.is_empty() {
            write!(f, "[")?;
            for (i, (l, v)) in self.specs.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{l} => {v}")?;
            }
            write!(f, "]")?;
        }
        Ok(())
    }
}

/// A runtime goal of the direct engine.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Goal {
    /// A molecular goal.
    Mol(MolGoal),
    /// A predicate goal (ordinary or built-in).
    Pred {
        /// The predicate symbol.
        pred: Symbol,
        /// The arguments (identity terms).
        args: Vec<RTerm>,
    },
    /// Negation as failure: succeeds iff the inner conjunction (the
    /// compiled form of one negated atomic formula) has no solution
    /// under the current bindings, which must ground it.
    Neg(Vec<Goal>),
}

impl fmt::Display for Goal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Goal::Mol(m) => write!(f, "{m}"),
            Goal::Pred { pred, args } => {
                write!(f, "{pred}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
            Goal::Neg(inner) => {
                write!(f, "\\+ (")?;
                for (i, g) in inner.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{g}")?;
                }
                write!(f, ")")
            }
        }
    }
}

/// A compiled C-logic clause: multiple head goals (generalized form), a
/// body, and a dense variable count.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MolClause {
    /// The head goals.
    pub heads: Vec<Goal>,
    /// The body goals.
    pub body: Vec<Goal>,
    /// Number of rule-local variables.
    pub n_vars: u32,
}

impl fmt::Display for MolClause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, h) in self.heads.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{h}")?;
        }
        if !self.body.is_empty() {
            write!(f, " :- ")?;
            for (i, b) in self.body.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{b}")?;
            }
        }
        write!(f, ".")
    }
}

/// How eagerly nested bare values emit their own goals.
///
/// A nested value's lifted goal `object: v` is *content-free*: whenever
/// the enclosing label piece is matched, `v` is an object by construction
/// of the store and the derivation rules. In goal position (bodies and
/// queries) emitting it would make the direct engine enumerate the active
/// domain exactly like the translated program's `object(X)` atoms — the
/// §4 redundancy the optimizer deletes — so [`EmitMode::Checks`] skips it.
/// In head position ([`EmitMode::Assertions`]) it must be kept: the paper's
/// optimized `common_np` still asserts `object(3)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EmitMode {
    /// Head position: assert everything, including bare nested values.
    Assertions,
    /// Body/query position: emit only content-bearing goals (molecules
    /// and values with a proper type).
    Checks,
    /// Built-in arguments: emit nothing, convert identities only.
    None,
}

/// Flattens a C-logic term into an identity [`RTerm`] plus the molecular
/// goals it asserts (its own, then any lifted from nested values).
/// The top-level term always emits its goal (unless `mode` is
/// [`EmitMode::None`]); nested bare values follow `mode`.
pub fn flatten_term(
    t: &Term,
    map: &mut HashMap<Symbol, VarId>,
    alloc: &mut VarAlloc,
    out: &mut Vec<Goal>,
    mode: EmitMode,
) -> RTerm {
    flatten_term_at(t, map, alloc, out, mode, true)
}

fn flatten_term_at(
    t: &Term,
    map: &mut HashMap<Symbol, VarId>,
    alloc: &mut VarAlloc,
    out: &mut Vec<Goal>,
    mode: EmitMode,
    top: bool,
) -> RTerm {
    let id = flatten_id(t.id_term(), map, alloc, out, mode);
    let emit = match mode {
        EmitMode::None => false,
        EmitMode::Assertions => true,
        EmitMode::Checks => {
            top || t.is_molecule() || t.ty() != clogic_core::hierarchy::object_type()
        }
    };
    if emit {
        let mut specs = Vec::new();
        for s in t.specs() {
            for v in s.value.terms() {
                let vid = flatten_term_at(v, map, alloc, out, mode, false);
                specs.push((s.label, vid));
            }
        }
        out.push(Goal::Mol(MolGoal {
            ty: t.ty(),
            id: id.clone(),
            specs,
            rules_only: false,
        }));
    }
    id
}

fn flatten_id(
    id: &IdTerm,
    map: &mut HashMap<Symbol, VarId>,
    alloc: &mut VarAlloc,
    out: &mut Vec<Goal>,
    mode: EmitMode,
) -> RTerm {
    match id {
        IdTerm::Var { name, .. } => {
            let v = *map.entry(*name).or_insert_with(|| alloc.fresh_named(*name));
            RTerm::Var(v)
        }
        IdTerm::Const { c, .. } => RTerm::Const(*c),
        IdTerm::App { functor, args, .. } => RTerm::App(
            *functor,
            args.iter()
                .map(|a| flatten_term_at(a, map, alloc, out, mode, false))
                .collect(),
        ),
    }
}

/// Compiles an atomic formula into goals (in satisfaction order: lifted
/// value goals first, the main goal last). `mode` should be
/// [`EmitMode::Assertions`] for heads and [`EmitMode::Checks`] for bodies
/// and queries.
pub fn compile_atomic(
    a: &Atomic,
    map: &mut HashMap<Symbol, VarId>,
    alloc: &mut VarAlloc,
    builtins: &BTreeSet<Symbol>,
    mode: EmitMode,
) -> Vec<Goal> {
    let mut out = Vec::new();
    match a {
        Atomic::Term(t) => {
            flatten_term(t, map, alloc, &mut out, mode);
        }
        Atomic::Pred { pred, args } => {
            let arg_mode = if builtins.contains(pred) {
                EmitMode::None
            } else {
                mode
            };
            let rargs: Vec<RTerm> = args
                .iter()
                .map(|t| flatten_term_at(t, map, alloc, &mut out, arg_mode, false))
                .collect();
            out.push(Goal::Pred {
                pred: *pred,
                args: rargs,
            });
        }
    }
    out
}

/// A compiled program for the direct engine.
#[derive(Clone, Debug, Default)]
pub struct DirectProgram {
    /// Hash-consed ground identities.
    pub terms: TermStore,
    /// The clustered extensional store.
    pub objects: ObjectStore,
    /// Ordinary predicate facts.
    pub preds: FactStore,
    /// Intensional clauses.
    pub clauses: Vec<MolClause>,
    /// The declared type hierarchy.
    pub hierarchy: TypeHierarchy,
    /// Evaluable predicate symbols.
    pub builtins: BTreeSet<Symbol>,
    /// Labels that some clause head can derive (used to decide whether a
    /// piece may be residuated towards the rules).
    pub intensional_labels: BTreeSet<Symbol>,
    /// Head types that some clause can derive.
    pub intensional_types: BTreeSet<Symbol>,
    /// Whether any clause head is a predicate goal, per symbol.
    pub intensional_preds: BTreeSet<Symbol>,
}

impl DirectProgram {
    /// Compiles a C-logic program, merging ground facts into the
    /// clustered store and keeping rules (and non-ground facts) as
    /// clauses.
    pub fn compile(p: &Program, builtins: impl IntoIterator<Item = Symbol>) -> DirectProgram {
        let mut out = DirectProgram {
            hierarchy: p.hierarchy(),
            builtins: builtins.into_iter().collect(),
            ..DirectProgram::default()
        };
        out.absorb(&p.clauses);
        out
    }

    /// Extends a compiled program in place with the clauses of `p` from
    /// index `from` on, for cumulative loading: the clustered store and
    /// tuple store are merged into (not rebuilt), clauses are appended,
    /// and the hierarchy is recomputed from the cumulative program (a
    /// delta may add subtype declarations, which change `is_subtype` for
    /// already-compiled symbols — the hierarchy is small, so refreshing
    /// it wholesale is cheap and keeps the result identical to a
    /// from-scratch [`DirectProgram::compile`] of `p`).
    pub fn extend(&mut self, p: &Program, from: usize) {
        self.hierarchy = p.hierarchy();
        let from = from.min(p.clauses.len());
        self.absorb(&p.clauses[from..]);
    }

    fn absorb(&mut self, clauses: &[clogic_core::formula::DefiniteClause]) {
        for c in clauses {
            let mut map = HashMap::new();
            let mut alloc = VarAlloc::new();
            let heads = compile_atomic(
                &c.head,
                &mut map,
                &mut alloc,
                &self.builtins,
                EmitMode::Assertions,
            );
            let mut body = Vec::new();
            for b in &c.body {
                body.extend(compile_atomic(
                    b,
                    &mut map,
                    &mut alloc,
                    &self.builtins,
                    EmitMode::Checks,
                ));
            }
            for n in &c.neg_body {
                let inner =
                    compile_atomic(n, &mut map, &mut alloc, &self.builtins, EmitMode::Checks);
                body.push(Goal::Neg(inner));
            }
            if body.is_empty() && heads.iter().all(goal_is_ground) {
                for h in &heads {
                    self.insert_ground(h);
                }
            } else {
                for h in &heads {
                    match h {
                        Goal::Mol(m) => {
                            self.intensional_types.insert(m.ty);
                            for (l, _) in &m.specs {
                                self.intensional_labels.insert(*l);
                            }
                        }
                        Goal::Pred { pred, .. } => {
                            self.intensional_preds.insert(*pred);
                        }
                        Goal::Neg(_) => unreachable!("negation cannot occur in a head"),
                    }
                }
                self.clauses.push(MolClause {
                    heads,
                    body,
                    n_vars: alloc.len() as u32,
                });
            }
        }
    }

    /// Inserts a ground goal into the extensional stores.
    fn insert_ground(&mut self, g: &Goal) {
        match g {
            Goal::Mol(m) => {
                let id = self.intern(&m.id);
                self.objects.add_type(id, m.ty);
                for (l, v) in &m.specs {
                    let vid = self.intern(v);
                    // values are objects too
                    self.objects
                        .add_type(vid, clogic_core::hierarchy::object_type());
                    self.objects.add_label(id, *l, vid);
                }
            }
            Goal::Pred { pred, args } => {
                let tuple: Vec<folog::TermId> = args.iter().map(|a| self.intern(a)).collect();
                self.preds.insert(*pred, tuple, &self.terms);
            }
            Goal::Neg(_) => unreachable!("negation cannot occur in a fact"),
        }
    }

    fn intern(&mut self, t: &RTerm) -> folog::TermId {
        match t {
            RTerm::Var(_) => unreachable!("ground goals only"),
            RTerm::Const(c) => self.terms.intern_const(*c),
            RTerm::App(f, args) => {
                let ids: Vec<folog::TermId> = args.iter().map(|a| self.intern(a)).collect();
                self.terms.intern_app(*f, ids)
            }
        }
    }

    /// Whether a type piece `ty` could be derived by some clause
    /// (some head type `τ' ≤ ty`).
    pub fn type_derivable(&self, ty: Symbol) -> bool {
        self.intensional_types
            .iter()
            .any(|&t| self.hierarchy.is_subtype(t, ty))
    }
}

fn goal_is_ground(g: &Goal) -> bool {
    match g {
        Goal::Mol(m) => m.id.is_ground() && m.specs.iter().all(|(_, v)| v.is_ground()),
        Goal::Pred { args, .. } => args.iter().all(RTerm::is_ground),
        Goal::Neg(inner) => inner.iter().all(goal_is_ground),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clogic_core::formula::DefiniteClause;
    use clogic_core::symbol::sym;
    use clogic_core::term::LabelSpec;
    use folog::builtins::builtin_symbols;

    fn builtins() -> BTreeSet<Symbol> {
        builtin_symbols().collect()
    }

    #[test]
    fn flatten_simple_molecule() {
        let t = Term::molecule(
            Term::typed_constant("person", "john"),
            vec![LabelSpec::one("age", Term::int(28))],
        )
        .unwrap();
        let goals = compile_atomic(
            &Atomic::term(t),
            &mut HashMap::new(),
            &mut VarAlloc::new(),
            &builtins(),
            EmitMode::Checks,
        );
        assert_eq!(goals.len(), 1);
        assert_eq!(goals[0].to_string(), "person: john[age => 28]");
    }

    #[test]
    fn flatten_lifts_nested_values() {
        let t = Term::molecule(
            Term::constant("john"),
            vec![LabelSpec::one(
                "spouse",
                Term::molecule(
                    Term::constant("mary"),
                    vec![LabelSpec::one("age", Term::int(27))],
                )
                .unwrap(),
            )],
        )
        .unwrap();
        let goals = compile_atomic(
            &Atomic::term(t),
            &mut HashMap::new(),
            &mut VarAlloc::new(),
            &builtins(),
            EmitMode::Checks,
        );
        assert_eq!(goals.len(), 2);
        assert_eq!(goals[0].to_string(), "object: mary[age => 27]");
        assert_eq!(goals[1].to_string(), "object: john[spouse => mary]");
    }

    #[test]
    fn flatten_expands_collections() {
        let t = Term::molecule(
            Term::constant("john"),
            vec![LabelSpec::set(
                "children",
                vec![Term::constant("bob"), Term::constant("bill")],
            )],
        )
        .unwrap();
        // In goal position bare values emit nothing extra…
        let goals = compile_atomic(
            &Atomic::term(t.clone()),
            &mut HashMap::new(),
            &mut VarAlloc::new(),
            &builtins(),
            EmitMode::Checks,
        );
        assert_eq!(goals.len(), 1);
        assert_eq!(
            goals[0].to_string(),
            "object: john[children => bob, children => bill]"
        );
        // …while in head position they are asserted.
        let heads = compile_atomic(
            &Atomic::term(t),
            &mut HashMap::new(),
            &mut VarAlloc::new(),
            &builtins(),
            EmitMode::Assertions,
        );
        assert_eq!(heads.len(), 3);
    }

    #[test]
    fn builtin_args_not_lifted() {
        let a = Atomic::pred(
            "is",
            vec![
                Term::var("L"),
                Term::app("+", vec![Term::var("L0"), Term::int(1)]),
            ],
        );
        let goals = compile_atomic(
            &a,
            &mut HashMap::new(),
            &mut VarAlloc::new(),
            &builtins(),
            EmitMode::Checks,
        );
        assert_eq!(goals.len(), 1);
        assert_eq!(goals[0].to_string(), "is(_G0, +(_G1, 1))");
    }

    #[test]
    fn regular_pred_args_are_lifted() {
        let a = Atomic::pred(
            "likes",
            vec![Term::typed_var("person", "X"), Term::constant("tea")],
        );
        let goals = compile_atomic(
            &a,
            &mut HashMap::new(),
            &mut VarAlloc::new(),
            &builtins(),
            EmitMode::Checks,
        );
        // person: X carries content; the bare constant tea does not.
        assert_eq!(goals.len(), 2);
        assert_eq!(goals[0].to_string(), "person: _G0");
        assert_eq!(goals[1].to_string(), "likes(_G0, tea)");
        // In head position the bare constant is asserted as an object.
        let heads = compile_atomic(
            &a,
            &mut HashMap::new(),
            &mut VarAlloc::new(),
            &builtins(),
            EmitMode::Assertions,
        );
        assert_eq!(heads.len(), 3);
        assert_eq!(heads[1].to_string(), "object: tea");
    }

    #[test]
    fn compile_merges_ground_facts() {
        let mut p = Program::new();
        p.push_fact(Atomic::term(
            Term::molecule(
                Term::typed_constant("path", "p"),
                vec![
                    LabelSpec::one("src", Term::constant("a")),
                    LabelSpec::one("dest", Term::constant("b")),
                ],
            )
            .unwrap(),
        ));
        p.push_fact(Atomic::term(
            Term::molecule(
                Term::typed_constant("path", "p"),
                vec![
                    LabelSpec::one("src", Term::constant("c")),
                    LabelSpec::one("dest", Term::constant("d")),
                ],
            )
            .unwrap(),
        ));
        let dp = DirectProgram::compile(&p, builtins());
        assert!(dp.clauses.is_empty());
        assert_eq!(dp.objects.display(&dp.terms).len(), 5); // p, a, b, c, d
        assert!(dp
            .objects
            .display(&dp.terms)
            .contains(&"path: p[dest => {b, d}, src => {a, c}]".to_string()));
    }

    #[test]
    fn compile_keeps_rules_and_tracks_intensional_symbols() {
        let mut p = Program::new();
        p.declare_subtype("propernp", "noun_phrase");
        p.push(DefiniteClause::rule(
            Atomic::term(
                Term::molecule(
                    Term::typed_var("propernp", "X"),
                    vec![LabelSpec::one("pers", Term::int(3))],
                )
                .unwrap(),
            ),
            vec![Atomic::term(Term::typed_var("name", "X"))],
        ));
        let dp = DirectProgram::compile(&p, builtins());
        assert_eq!(dp.clauses.len(), 1);
        assert!(dp.intensional_labels.contains(&sym("pers")));
        assert!(dp.intensional_types.contains(&sym("propernp")));
        // propernp derivable implies noun_phrase derivable (hierarchy)
        assert!(dp.type_derivable(sym("noun_phrase")));
        assert!(dp.type_derivable(sym("propernp")));
        assert!(!dp.type_derivable(sym("name")));
        // The bare value 3 is asserted as an object in the head (the
        // paper's optimized common_np keeps object(3) too).
        assert_eq!(
            dp.clauses[0].to_string(),
            "object: 3, propernp: _G0[pers => 3] :- name: _G0."
        );
    }

    #[test]
    fn predicate_facts_go_to_tuple_store() {
        let mut p = Program::new();
        p.push_fact(Atomic::pred(
            "likes",
            vec![Term::constant("john"), Term::constant("tea")],
        ));
        let dp = DirectProgram::compile(&p, builtins());
        assert_eq!(dp.preds.total, 1);
        // the arguments were asserted as objects too
        assert_eq!(dp.objects.len(), 2);
    }

    #[test]
    fn non_ground_fact_becomes_clause() {
        let mut p = Program::new();
        p.push_fact(Atomic::term(Term::typed_var("anything", "X")));
        let dp = DirectProgram::compile(&p, builtins());
        assert_eq!(dp.clauses.len(), 1);
        assert!(dp.objects.is_empty());
    }

    #[test]
    fn skolem_identity_facts_cluster() {
        let mut p = Program::new();
        p.push_fact(Atomic::term(
            Term::molecule(
                Term::typed_app("path", "id", vec![Term::constant("a"), Term::constant("b")]),
                vec![LabelSpec::one("src", Term::constant("a"))],
            )
            .unwrap(),
        ));
        let dp = DirectProgram::compile(&p, builtins());
        let shown = dp.objects.display(&dp.terms);
        assert!(
            shown.contains(&"path: id(a, b)[src => a]".to_string()),
            "{shown:?}"
        );
    }

    #[test]
    fn extend_matches_from_scratch_compile() {
        let mut first = Program::new();
        first.push_fact(Atomic::term(
            Term::molecule(
                Term::typed_constant("path", "p"),
                vec![LabelSpec::one("src", Term::constant("a"))],
            )
            .unwrap(),
        ));
        let mut combined = first.clone();
        // The delta adds a subtype declaration, a clause, and a fact that
        // clusters onto the already-stored object p.
        combined.declare_subtype("shortpath", "path");
        combined.push(DefiniteClause::rule(
            Atomic::term(Term::typed_var("shortpath", "X")),
            vec![Atomic::term(Term::typed_var("path", "X"))],
        ));
        combined.push_fact(Atomic::term(
            Term::molecule(
                Term::typed_constant("path", "p"),
                vec![LabelSpec::one("dest", Term::constant("b"))],
            )
            .unwrap(),
        ));

        let mut dp = DirectProgram::compile(&first, builtins());
        dp.extend(&combined, first.clauses.len());
        let full = DirectProgram::compile(&combined, builtins());

        assert_eq!(dp.clauses, full.clauses);
        assert_eq!(dp.objects.display(&dp.terms), full.objects.display(&full.terms));
        assert_eq!(dp.preds.total, full.preds.total);
        assert_eq!(dp.intensional_types, full.intensional_types);
        assert!(dp.hierarchy.is_subtype(sym("shortpath"), sym("path")));
    }

    #[test]
    fn piece_count() {
        let m = MolGoal {
            ty: sym("t"),
            id: RTerm::Var(0),
            specs: vec![(sym("l"), RTerm::Var(1))],
            rules_only: false,
        };
        assert_eq!(m.piece_count(), 2);
    }
}
