//! Direct resolution over complex objects, with residuation (§4).
//!
//! The engine answers C-logic queries without translating to first-order
//! clauses. A molecular goal is resolved in two ways:
//!
//! * **against the clustered store** — the goal's identity is matched to a
//!   candidate object (found through the type / label-value indexes) and
//!   every piece the object's merged record can supply is consumed at
//!   once. Pieces the record cannot supply form a *residual* goal, marked
//!   rules-only so the store is not consulted twice;
//! * **against a clause head** — the head molecule may describe only part
//!   of the object ("several rules, each of which deals with partial
//!   information about the same object"), so the head covers a subset of
//!   the goal's pieces, the clause body is solved, and the uncovered
//!   pieces continue as a residual goal.
//!
//! This implements exactly the paper's example: the query
//! `path: p[src ⇒ a, dest ⇒ d]` solves `src` against the first fact,
//! leaves the residual `path: p[dest ⇒ d]`, and solves that against the
//! second — where naive whole-molecule unification would fail.
//!
//! Type pieces are handled order-sortedly: an object satisfies `τ : id`
//! when it was asserted with any type `τ' ≤ τ` — no type-axiom clauses
//! are ever executed.

use crate::goal::{DirectProgram, Goal, MolGoal};
use clogic_core::formula::Query;
use clogic_core::hierarchy::object_type;
use clogic_core::symbol::Symbol;
use folog::budget::{Budget, BudgetMeter, Degradation, TripKind};
use folog::builtins::BuiltinError;
use folog::program::{shift_atom, shift_term};
use folog::rterm::{RAtom, RTerm, VarAlloc, VarId};
use folog::sld::fo_of_rterm;
use folog::unify::{unify, Bindings, UnifyOptions};
use folog::{TermId, TermStore};
use std::collections::{BTreeMap, HashMap};

/// How aggressively pieces of a molecular goal are residuated.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ResiduationMode {
    /// Residuate a piece only when the current source (store record or
    /// clause head) has **no** unifiable value for its label. Complete for
    /// the paper's residuation scenarios (information about one object
    /// split across sources), and keeps the search linear in practice.
    /// What it gives up: answer combinations where one *unbound* piece
    /// takes a value from this source while an identical-label sibling
    /// piece takes its value from a different source.
    OnFailure,
    /// Try the residual branch for every piece (2^pieces branches per
    /// source): fully complete cross-source combinations, exponentially
    /// more expensive.
    Full,
}

/// Options for the direct engine.
///
/// Hitting any limit (depth, steps, solutions, or a [`budget`](Self::budget)
/// ceiling) degrades gracefully: the answers found so far are returned with
/// `complete: false` and a [`Degradation`] report.
#[derive(Clone, Debug)]
pub struct DirectOptions {
    /// Maximum resolution depth.
    pub max_depth: Option<usize>,
    /// Maximum resolution steps.
    pub max_steps: Option<u64>,
    /// Stop after this many solutions.
    pub max_solutions: Option<usize>,
    /// Unification options.
    pub unify: UnifyOptions,
    /// Residuation aggressiveness.
    pub residuation: ResiduationMode,
    /// Shared resource ceilings (deadline, steps, memory, cancellation).
    pub budget: Budget,
    /// Observability handles; counter deltas are flushed once per solve,
    /// never from the resolution loop.
    pub obs: clogic_obs::Obs,
}

impl Default for DirectOptions {
    fn default() -> Self {
        DirectOptions {
            max_depth: Some(10_000),
            max_steps: Some(10_000_000),
            max_solutions: None,
            unify: UnifyOptions::default(),
            residuation: ResiduationMode::OnFailure,
            budget: Budget::unlimited(),
            obs: clogic_obs::Obs::default(),
        }
    }
}

/// Counters for a direct-engine run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DirectStats {
    /// Goal-resolution steps.
    pub steps: u64,
    /// Store candidates examined.
    pub store_candidates: u64,
    /// Clause-head resolution attempts.
    pub clause_attempts: u64,
    /// Residual goals created (the paper's residuation).
    pub residuals: u64,
    /// Piece-level match attempts.
    pub piece_matches: u64,
    /// Clause resolutions skipped because the goal is a variant of an
    /// in-progress ancestor goal (loop check).
    pub loop_prunes: u64,
}

/// The outcome of a direct run.
#[derive(Clone, Debug)]
pub struct DirectResult {
    /// Answers: query-variable name → term.
    pub answers: Vec<BTreeMap<Symbol, clogic_core::fol::FoTerm>>,
    /// Counters.
    pub stats: DirectStats,
    /// Whether the search space was exhausted within the limits.
    pub complete: bool,
    /// Why the search stopped or pruned early, when `complete` is false.
    pub degradation: Option<Degradation>,
    /// Successful head resolutions per clause, indexed by the clause's
    /// position in the compiled program — the direct engine's analogue of
    /// the fixpoint's per-rule tuple counts. (Lives on the result, not
    /// [`DirectStats`], which stays `Copy`.)
    pub per_rule: Vec<u64>,
}

/// Stack size for the dedicated search thread (resolution recursion is
/// depth-limited but can legitimately go thousands of frames deep).
const SEARCH_STACK_BYTES: usize = 256 * 1024 * 1024;

/// The direct C-logic engine.
///
/// ```
/// use clogic_engine::{DirectEngine, DirectOptions, DirectProgram};
///
/// let program = clogic_parser::parse_program(
///     "path: p[src => a, dest => b].\n\
///      path: p[src => c, dest => d].",
/// )
/// .unwrap();
/// let compiled = DirectProgram::compile(&program, folog::builtins::builtin_symbols());
/// let engine = DirectEngine::new(&compiled, DirectOptions::default());
/// // §4: labels of a term are independent — the cross query succeeds.
/// let query = clogic_parser::parse_query("path: p[src => a, dest => d]").unwrap();
/// assert_eq!(engine.solve(&query).unwrap().answers.len(), 1);
/// ```
pub struct DirectEngine<'p> {
    program: &'p DirectProgram,
    opts: DirectOptions,
}

struct Search<'p> {
    p: &'p DirectProgram,
    opts: DirectOptions,
    bind: Bindings,
    next_var: VarId,
    stats: DirectStats,
    truncated: bool,
    /// The engine-local limit that first truncated the search, if any.
    /// Local limits only prune branches (the search continues elsewhere),
    /// so they are tracked separately from the latching budget meter.
    trunc: Option<TripKind>,
    meter: BudgetMeter,
    emitted: usize,
    /// Canonical forms of molecular goals whose clause resolution is in
    /// progress on the current derivation branch (variant loop check).
    in_progress: Vec<MolGoal>,
    /// Successful head resolutions per clause index.
    per_rule: Vec<u64>,
}

impl Search<'_> {
    fn bump_rule(&mut self, ci: usize) {
        if self.per_rule.len() <= ci {
            self.per_rule.resize(ci + 1, 0);
        }
        self.per_rule[ci] += 1;
    }
}

impl<'p> DirectEngine<'p> {
    /// Creates an engine over a compiled program.
    pub fn new(program: &'p DirectProgram, opts: DirectOptions) -> DirectEngine<'p> {
        DirectEngine { program, opts }
    }

    /// Solves a C-logic query directly.
    pub fn solve(&self, query: &Query) -> Result<DirectResult, BuiltinError> {
        let mut map: HashMap<Symbol, VarId> = HashMap::new();
        let mut alloc = VarAlloc::new();
        let mut goals: Vec<Goal> = Vec::new();
        for g in &query.goals {
            goals.extend(crate::goal::compile_atomic(
                g,
                &mut map,
                &mut alloc,
                &self.program.builtins,
                crate::goal::EmitMode::Checks,
            ));
        }
        for n in &query.neg_goals {
            let inner = crate::goal::compile_atomic(
                n,
                &mut map,
                &mut alloc,
                &self.program.builtins,
                crate::goal::EmitMode::Checks,
            );
            goals.push(Goal::Neg(inner));
        }
        let query_vars: Vec<(Symbol, VarId)> = {
            let mut v: Vec<_> = map.into_iter().collect();
            v.sort();
            v
        };
        let mut search = Search {
            p: self.program,
            opts: self.opts.clone(),
            bind: Bindings::new(),
            next_var: alloc.len() as VarId,
            stats: DirectStats::default(),
            truncated: false,
            trunc: None,
            meter: BudgetMeter::new(&self.opts.budget),
            emitted: 0,
            in_progress: Vec::new(),
            per_rule: Vec::new(),
        };
        let idx_before = self.program.preds.index_stats();
        let mut answers = Vec::new();
        let mut span = self.opts.obs.tracer.span_with(
            "engine.direct.solve",
            vec![("goals", (query.goals.len() + query.neg_goals.len()).into())],
        );
        // Resolution recurses once per goal; deep (but depth-limited)
        // searches need more stack than a default test thread provides,
        // so the search runs on a dedicated big-stack thread.
        std::thread::scope(|scope| {
            std::thread::Builder::new()
                .name("clogic-direct-search".into())
                .stack_size(SEARCH_STACK_BYTES)
                .spawn_scoped(scope, || {
                    search.solve(&goals, 0, &mut |bind| {
                        let mut answer = BTreeMap::new();
                        for &(name, v) in &query_vars {
                            answer.insert(name, fo_of_rterm(&bind.resolve(&RTerm::Var(v))));
                        }
                        answers.push(answer);
                    })
                })
                .expect("spawn search thread")
                .join()
                .expect("search thread panicked")
        })?;
        let hit_cap = self.opts.max_solutions.is_some_and(|m| answers.len() >= m);
        answers.sort();
        answers.dedup();
        // Loop pruning terminates variant recursion; answers reachable
        // only through deeper unrolling may be missing, so the run is
        // reported incomplete whenever pruning fired.
        let complete = !search.truncated && !hit_cap && search.stats.loop_prunes == 0;
        let degradation = if complete {
            None
        } else {
            let trip = search
                .meter
                .tripped()
                .or(search.trunc)
                .unwrap_or(if hit_cap {
                    TripKind::Solutions
                } else {
                    TripKind::VariantLoop
                });
            Some(search.meter.degradation_for(
                trip,
                "direct",
                search.stats.steps,
                format!(
                    "{trip} after {} steps, {} answers, {} loop prunes",
                    search.stats.steps,
                    answers.len(),
                    search.stats.loop_prunes
                ),
            ))
        };
        span.record("steps", search.stats.steps);
        span.record("answers", answers.len());
        span.record("residuals", search.stats.residuals);
        span.record("complete", u64::from(complete));
        drop(span);
        let m = &self.opts.obs.metrics;
        m.counter("engine.direct.queries").inc();
        m.counter("engine.direct.steps").add(search.stats.steps);
        m.counter("engine.direct.clause_attempts")
            .add(search.stats.clause_attempts);
        m.counter("engine.direct.piece_matches")
            .add(search.stats.piece_matches);
        m.counter("engine.direct.residuals")
            .add(search.stats.residuals);
        m.counter("engine.direct.loop_prunes")
            .add(search.stats.loop_prunes);
        let idx = self.program.preds.index_stats();
        m.counter("folog.index.builds").add(idx.builds - idx_before.builds);
        m.counter("folog.index.extends")
            .add(idx.extends - idx_before.extends);
        m.counter("folog.index.hits").add(idx.hits - idx_before.hits);
        m.counter("folog.index.misses").add(idx.misses - idx_before.misses);
        Ok(DirectResult {
            answers,
            stats: search.stats,
            complete,
            degradation,
            per_rule: search.per_rule,
        })
    }
}

/// Reconstructs a runtime term from a ground interned term.
pub fn rterm_of_ground(terms: &TermStore, id: TermId) -> RTerm {
    match terms.get(id) {
        folog::GroundTerm::Const(c) => RTerm::Const(*c),
        folog::GroundTerm::App(f, args) => RTerm::App(
            *f,
            args.iter().map(|&a| rterm_of_ground(terms, a)).collect(),
        ),
    }
}

/// Looks up the interned id of a resolved ground runtime term without
/// inserting; `None` when non-ground or never interned (hence not in any
/// store).
pub fn ground_lookup(terms: &TermStore, t: &RTerm) -> Option<TermId> {
    match t {
        RTerm::Var(_) => None,
        RTerm::Const(c) => terms.lookup(&folog::GroundTerm::Const(*c)),
        RTerm::App(f, args) => {
            let mut ids = Vec::with_capacity(args.len());
            for a in args {
                ids.push(ground_lookup(terms, a)?);
            }
            terms.lookup(&folog::GroundTerm::App(*f, ids))
        }
    }
}

impl Search<'_> {
    /// Records an engine-local truncation (branch prune, search continues).
    fn cut(&mut self, kind: TripKind) {
        self.truncated = true;
        if self.trunc.is_none() {
            self.trunc = Some(kind);
        }
    }

    fn limits_ok(&mut self, depth: usize) -> bool {
        if self.opts.max_depth.is_some_and(|m| depth > m) {
            self.cut(TripKind::Depth);
            return false;
        }
        if self.opts.max_steps.is_some_and(|m| self.stats.steps > m) {
            self.cut(TripKind::Steps);
            return false;
        }
        // Direct-resolution steps are heavyweight (store scans, variant
        // checks over growing goals), so the deadline is checked unmasked
        // on every step rather than at the meter's coarse tick interval.
        if !self.meter.tick() || !self.meter.check_time_and_cancel() {
            // Budget trip: latch and unwind the whole search.
            self.truncated = true;
            return false;
        }
        true
    }

    /// Returns `Ok(false)` to stop the whole search (solution cap).
    fn solve(
        &mut self,
        goals: &[Goal],
        depth: usize,
        emit: &mut impl FnMut(&Bindings),
    ) -> Result<bool, BuiltinError> {
        let Some((goal, rest)) = goals.split_first() else {
            emit(&self.bind);
            self.emitted += 1;
            return Ok(self.opts.max_solutions.is_none_or(|m| self.emitted < m));
        };
        if !self.limits_ok(depth) {
            return Ok(true);
        }
        self.stats.steps += 1;
        match goal {
            Goal::Pred { pred, args } => self.solve_pred(*pred, args, rest, depth, emit),
            Goal::Mol(m) => self.solve_mol(m, rest, depth, emit),
            Goal::Neg(inner) => {
                // NAF: the inner conjunction must be ground under the
                // current bindings, and must have no solution.
                if !self.goals_ground(inner) {
                    return Err(BuiltinError::Floundered(
                        inner
                            .iter()
                            .map(|g| g.to_string())
                            .collect::<Vec<_>>()
                            .join(", "),
                    ));
                }
                if self.exists(inner, depth)? {
                    Ok(true)
                } else {
                    self.solve(rest, depth, emit)
                }
            }
        }
    }

    /// Whether every term of every goal is ground under current bindings.
    fn goals_ground(&self, goals: &[Goal]) -> bool {
        let term_ground = |t: &RTerm| self.bind.resolve(t).is_ground();
        goals.iter().all(|g| match g {
            Goal::Mol(m) => term_ground(&m.id) && m.specs.iter().all(|(_, v)| term_ground(v)),
            Goal::Pred { args, .. } => args.iter().all(term_ground),
            Goal::Neg(_) => true, // nested negation checked when selected
        })
    }

    /// Existence sub-search: does the conjunction have any solution?
    /// Bindings are restored afterwards; limits are shared.
    fn exists(&mut self, goals: &[Goal], depth: usize) -> Result<bool, BuiltinError> {
        let saved_emitted = self.emitted;
        let saved_max = self.opts.max_solutions;
        self.emitted = 0;
        self.opts.max_solutions = Some(1);
        let cp = self.bind.checkpoint();
        self.solve(goals, depth + 1, &mut |_| {})?;
        let found = self.emitted > 0;
        self.bind.rollback(cp);
        self.emitted = saved_emitted;
        self.opts.max_solutions = saved_max;
        Ok(found)
    }

    fn solve_pred(
        &mut self,
        pred: Symbol,
        args: &[RTerm],
        rest: &[Goal],
        depth: usize,
        emit: &mut impl FnMut(&Bindings),
    ) -> Result<bool, BuiltinError> {
        if self.p.builtins.contains(&pred) {
            let goal = RAtom {
                pred,
                args: args.to_vec(),
            };
            let cp = self.bind.checkpoint();
            let ok = folog::builtins::solve(&goal, &mut self.bind, self.opts.unify)?;
            let cont = if ok {
                self.solve(rest, depth, emit)?
            } else {
                true
            };
            self.bind.rollback(cp);
            return Ok(cont);
        }
        // Extensional tuples, selected through the relation's pattern
        // index: every argument ground under the current bindings pins
        // its position. A ground argument that was never interned cannot
        // equal any stored value, so the whole branch is skipped.
        if let Some(rel) = self.p.preds.relation(pred, args.len()) {
            let mut keys: Vec<folog::IndexKey> = Vec::new();
            let mut unmatchable = false;
            for (i, a) in args.iter().enumerate() {
                let r = self.bind.resolve(a);
                if r.is_ground() {
                    match ground_lookup(&self.p.terms, &r) {
                        Some(id) => keys.push(folog::IndexKey::Exact(i as u32, id)),
                        None => {
                            unmatchable = true;
                            break;
                        }
                    }
                }
            }
            if !unmatchable {
                let rows = rel.candidate_rows(
                    &keys,
                    0..rel.len() as u32,
                    &self.p.terms,
                    self.p.preds.index_mode(),
                );
                for row in rows {
                    let tuple = rel.tuple(row);
                    let cp = self.bind.checkpoint();
                    self.stats.piece_matches += 1;
                    let ok = args.iter().zip(tuple).all(|(a, &id)| {
                        unify(
                            a,
                            &rterm_of_ground(&self.p.terms, id),
                            &mut self.bind,
                            self.opts.unify,
                        )
                    });
                    if ok && !self.solve(rest, depth + 1, emit)? {
                        self.bind.rollback(cp);
                        return Ok(false);
                    }
                    self.bind.rollback(cp);
                }
            }
        }
        // Intensional clauses with predicate heads.
        if self.p.intensional_preds.contains(&pred) {
            for ci in 0..self.p.clauses.len() {
                let clause = &self.p.clauses[ci];
                for (hi, head) in clause.heads.iter().enumerate() {
                    let Goal::Pred {
                        pred: hp,
                        args: hargs,
                    } = head
                    else {
                        continue;
                    };
                    if *hp != pred || hargs.len() != args.len() {
                        continue;
                    }
                    self.stats.clause_attempts += 1;
                    let offset = self.next_var;
                    let cp = self.bind.checkpoint();
                    let ok = args.iter().zip(hargs).all(|(a, h)| {
                        unify(a, &shift_term(h, offset), &mut self.bind, self.opts.unify)
                    });
                    if ok {
                        self.bump_rule(ci);
                        let saved = self.next_var;
                        self.next_var += clause.n_vars;
                        let mut new_goals: Vec<Goal> =
                            Vec::with_capacity(clause.body.len() + rest.len());
                        new_goals.extend(clause.body.iter().map(|b| shift_goal(b, offset)));
                        new_goals.extend_from_slice(rest);
                        let cont = self.solve(&new_goals, depth + 1, emit)?;
                        self.next_var = self.next_var.max(saved);
                        if !cont {
                            self.bind.rollback(cp);
                            return Ok(false);
                        }
                    }
                    self.bind.rollback(cp);
                    let _ = hi;
                }
            }
        }
        Ok(true)
    }

    fn solve_mol(
        &mut self,
        g: &MolGoal,
        rest: &[Goal],
        depth: usize,
        emit: &mut impl FnMut(&Bindings),
    ) -> Result<bool, BuiltinError> {
        // (A) The clustered store.
        if !g.rules_only && !self.solve_mol_store(g, rest, depth, emit)? {
            return Ok(false);
        }
        // (B) Clause heads.
        self.solve_mol_clauses(g, rest, depth, emit)
    }

    /// Candidate objects for a molecular goal, via the cheapest index.
    fn candidates(&mut self, g: &MolGoal) -> Vec<TermId> {
        let id = self.bind.resolve(&g.id);
        if id.is_ground() {
            return ground_lookup(&self.p.terms, &id).into_iter().collect();
        }
        if g.ty != object_type() {
            // Composite selection: when the goal also fixes a label to a
            // ground value, the (label, value) posting list intersected
            // with the type check is usually far smaller than the type
            // extent. Only provably answer-preserving cases qualify: the
            // type must not be rule-derivable (so membership in the
            // stored extent is mandatory) and the label must not be
            // intensional (so a store match is mandatory — the piece can
            // never residuate towards the rules).
            if !self.p.type_derivable(g.ty) {
                for (l, v) in &g.specs {
                    if self.p.intensional_labels.contains(l) {
                        continue;
                    }
                    let rv = self.bind.resolve(v);
                    if rv.is_ground() {
                        return match ground_lookup(&self.p.terms, &rv) {
                            Some(vid) => self
                                .p
                                .objects
                                .with_label_value(*l, vid)
                                .iter()
                                .copied()
                                .filter(|&o| self.p.objects.has_type(o, g.ty, &self.p.hierarchy))
                                .collect(),
                            None => Vec::new(), // value unknown to the store
                        };
                    }
                }
            }
            return self.p.objects.with_type(g.ty, &self.p.hierarchy);
        }
        // Ground label value?
        for (l, v) in &g.specs {
            let rv = self.bind.resolve(v);
            if rv.is_ground() {
                return match ground_lookup(&self.p.terms, &rv) {
                    Some(vid) => self.p.objects.with_label_value(*l, vid).to_vec(),
                    None => Vec::new(), // value unknown to the store
                };
            }
        }
        if let Some((l, _)) = g.specs.first() {
            return self.p.objects.with_label(*l).to_vec();
        }
        self.p.objects.identities().to_vec()
    }

    fn solve_mol_store(
        &mut self,
        g: &MolGoal,
        rest: &[Goal],
        depth: usize,
        emit: &mut impl FnMut(&Bindings),
    ) -> Result<bool, BuiltinError> {
        let candidates = self.candidates(g);
        for oid in candidates {
            self.stats.store_candidates += 1;
            let cp = self.bind.checkpoint();
            if !unify(
                &g.id,
                &rterm_of_ground(&self.p.terms, oid),
                &mut self.bind,
                self.opts.unify,
            ) {
                self.bind.rollback(cp);
                continue;
            }
            let ty_covered = self.p.objects.has_type(oid, g.ty, &self.p.hierarchy);
            if !ty_covered && !self.p.type_derivable(g.ty) {
                self.bind.rollback(cp);
                continue;
            }
            let cont =
                self.cover_store_specs(g, oid, 0, ty_covered, &mut Vec::new(), rest, depth, emit)?;
            self.bind.rollback(cp);
            if !cont {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// Covers `g.specs[i..]` against object `oid`'s record, residuating
    /// pieces the record lacks (when the rules could still derive them).
    #[allow(clippy::too_many_arguments)]
    fn cover_store_specs(
        &mut self,
        g: &MolGoal,
        oid: TermId,
        i: usize,
        ty_covered: bool,
        residual: &mut Vec<(Symbol, RTerm)>,
        rest: &[Goal],
        depth: usize,
        emit: &mut impl FnMut(&Bindings),
    ) -> Result<bool, BuiltinError> {
        if i == g.specs.len() {
            let covered = usize::from(ty_covered) + (g.specs.len() - residual.len());
            if covered == 0 {
                // Nothing consumed: leave this goal entirely to the rules.
                return Ok(true);
            }
            let mut new_goals: Vec<Goal> = Vec::new();
            if !ty_covered || !residual.is_empty() {
                self.stats.residuals += 1;
                new_goals.push(Goal::Mol(MolGoal {
                    ty: if ty_covered { object_type() } else { g.ty },
                    id: g.id.clone(),
                    specs: residual.clone(),
                    rules_only: true,
                }));
                // A fully-typed residual with no pieces is vacuous.
                if ty_covered && residual.is_empty() {
                    new_goals.clear();
                }
            }
            new_goals.extend_from_slice(rest);
            return self.solve(&new_goals, depth + 1, emit);
        }
        let (label, value) = &g.specs[i];
        let stored: Vec<TermId> = self
            .p
            .objects
            .record(oid)
            .map(|r| r.values(*label).to_vec())
            .unwrap_or_default();
        let mut matched_any = false;
        for v in stored {
            self.stats.piece_matches += 1;
            let cp = self.bind.checkpoint();
            if unify(
                value,
                &rterm_of_ground(&self.p.terms, v),
                &mut self.bind,
                self.opts.unify,
            ) {
                matched_any = true;
                if !self.cover_store_specs(
                    g,
                    oid,
                    i + 1,
                    ty_covered,
                    residual,
                    rest,
                    depth,
                    emit,
                )? {
                    self.bind.rollback(cp);
                    return Ok(false);
                }
            }
            self.bind.rollback(cp);
        }
        // Residuate this piece towards the rules, if they could derive it.
        // Pieces whose label is duplicated in the goal (the §5 subset
        // pattern, `children => {X, Y}`) residuate even when matched:
        // each duplicate may take its value from a different source.
        let dup = g.specs.iter().filter(|(l, _)| l == label).count() > 1;
        let try_residual = self.p.intensional_labels.contains(label)
            && (self.opts.residuation == ResiduationMode::Full || !matched_any || dup);
        if try_residual {
            residual.push((*label, value.clone()));
            let cont =
                self.cover_store_specs(g, oid, i + 1, ty_covered, residual, rest, depth, emit)?;
            residual.pop();
            return Ok(cont);
        }
        Ok(true)
    }

    /// The canonical (variant-normalized) form of a molecular goal under
    /// the current bindings: variables renumbered in first occurrence
    /// order, so two goals are variants iff their canonical forms are
    /// equal.
    fn canonical_mol(&self, g: &MolGoal) -> MolGoal {
        let mut map: HashMap<VarId, VarId> = HashMap::new();
        fn go(t: &RTerm, bind: &Bindings, map: &mut HashMap<VarId, VarId>) -> RTerm {
            let w = bind.walk(t).clone();
            match w {
                RTerm::Var(v) => {
                    let n = map.len() as VarId;
                    RTerm::Var(*map.entry(v).or_insert(n))
                }
                RTerm::Const(_) => w,
                RTerm::App(f, args) => {
                    RTerm::App(f, args.iter().map(|a| go(a, bind, map)).collect())
                }
            }
        }
        MolGoal {
            ty: g.ty,
            id: go(&g.id, &self.bind, &mut map),
            specs: g
                .specs
                .iter()
                .map(|(l, v)| (*l, go(v, &self.bind, &mut map)))
                .collect(),
            rules_only: false,
        }
    }

    fn solve_mol_clauses(
        &mut self,
        g: &MolGoal,
        rest: &[Goal],
        depth: usize,
        emit: &mut impl FnMut(&Bindings),
    ) -> Result<bool, BuiltinError> {
        // Variant loop check: resolving a goal that is a variant of an
        // ancestor goal currently under clause resolution would unroll
        // the same derivations forever (e.g. `senior: X :- student:
        // X[…]` with `senior < student`). Prune it; answers reachable
        // only through such unrolling require the tabled strategy, and
        // the result is reported incomplete whenever pruning fired.
        let canon = self.canonical_mol(g);
        if self.in_progress.contains(&canon) {
            self.stats.loop_prunes += 1;
            return Ok(true);
        }
        self.in_progress.push(canon);
        let out = self.solve_mol_clauses_inner(g, rest, depth, emit);
        self.in_progress.pop();
        out
    }

    fn solve_mol_clauses_inner(
        &mut self,
        g: &MolGoal,
        rest: &[Goal],
        depth: usize,
        emit: &mut impl FnMut(&Bindings),
    ) -> Result<bool, BuiltinError> {
        for (ci, clause) in self.p.clauses.iter().enumerate() {
            for head in &clause.heads {
                let Goal::Mol(h) = head else { continue };
                self.stats.clause_attempts += 1;
                let offset = self.next_var;
                let cp = self.bind.checkpoint();
                if !unify(
                    &g.id,
                    &shift_term(&h.id, offset),
                    &mut self.bind,
                    self.opts.unify,
                ) {
                    self.bind.rollback(cp);
                    continue;
                }
                // Ordered selection: the clause must cover the goal's
                // *selected* piece — the type piece when it is non-trivial
                // (`g.ty ≠ object`), otherwise the first label piece
                // (enforced inside `cover_clause_specs`). Pieces the head
                // cannot supply residuate in a canonical order, so a
                // description split across r sources is assembled once,
                // not once per source permutation. A goal whose type
                // piece this head cannot supply is resolved only after
                // another source covers the type (the residual is then
                // `object`-typed and selects its first label piece).
                let ty_covered = self.p.hierarchy.is_subtype(h.ty, g.ty);
                if !ty_covered {
                    self.bind.rollback(cp);
                    continue;
                }
                self.bump_rule(ci);
                let h_shifted: Vec<(Symbol, RTerm)> = h
                    .specs
                    .iter()
                    .map(|(l, v)| (*l, shift_term(v, offset)))
                    .collect();
                let saved = self.next_var;
                self.next_var += clause.n_vars;
                let body: Vec<Goal> = clause.body.iter().map(|b| shift_goal(b, offset)).collect();
                let cont = self.cover_clause_specs(
                    g,
                    &h_shifted,
                    ty_covered,
                    0,
                    &mut Vec::new(),
                    &mut 0,
                    &body,
                    rest,
                    depth,
                    emit,
                )?;
                self.next_var = self.next_var.max(saved);
                self.bind.rollback(cp);
                if !cont {
                    return Ok(false);
                }
            }
        }
        Ok(true)
    }

    /// Covers `g.specs[i..]` against a clause head's pieces; uncovered
    /// pieces residuate. Requires ≥ 1 covered piece overall (type counts).
    #[allow(clippy::too_many_arguments)]
    fn cover_clause_specs(
        &mut self,
        g: &MolGoal,
        h_specs: &[(Symbol, RTerm)],
        ty_covered: bool,
        i: usize,
        residual: &mut Vec<(Symbol, RTerm)>,
        covered: &mut usize,
        body: &[Goal],
        rest: &[Goal],
        depth: usize,
        emit: &mut impl FnMut(&Bindings),
    ) -> Result<bool, BuiltinError> {
        if i == g.specs.len() {
            // A trivially-satisfied `object` type piece is not progress
            // unless the goal is a bare existence check — otherwise a head
            // could "cover" nothing and residuate the same goal forever.
            let ty_progress = ty_covered && (g.ty != object_type() || g.specs.is_empty());
            if *covered + usize::from(ty_progress) == 0 {
                return Ok(true); // no progress through this head
            }
            let mut new_goals: Vec<Goal> = Vec::with_capacity(body.len() + rest.len() + 1);
            new_goals.extend_from_slice(body);
            if !ty_covered || !residual.is_empty() {
                self.stats.residuals += 1;
                new_goals.push(Goal::Mol(MolGoal {
                    ty: if ty_covered { object_type() } else { g.ty },
                    id: g.id.clone(),
                    specs: residual.clone(),
                    rules_only: false,
                }));
                if ty_covered && residual.is_empty() {
                    new_goals.pop();
                }
            }
            new_goals.extend_from_slice(rest);
            return self.solve(&new_goals, depth + 1, emit);
        }
        let (label, value) = &g.specs[i];
        let mut matched_any = false;
        for (hl, hv) in h_specs {
            if hl != label {
                continue;
            }
            self.stats.piece_matches += 1;
            let cp = self.bind.checkpoint();
            if unify(value, hv, &mut self.bind, self.opts.unify) {
                matched_any = true;
                *covered += 1;
                let cont = self.cover_clause_specs(
                    g,
                    h_specs,
                    ty_covered,
                    i + 1,
                    residual,
                    covered,
                    body,
                    rest,
                    depth,
                    emit,
                )?;
                *covered -= 1;
                if !cont {
                    self.bind.rollback(cp);
                    return Ok(false);
                }
            }
            self.bind.rollback(cp);
        }
        // Residuate this piece (some other source supplies it). The
        // selected piece — the first label piece of an `object`-typed
        // goal — must be covered by *this* head, never residuated:
        // that is what keeps residuation chains canonical. Duplicated
        // labels residuate even when matched (see `cover_store_specs`).
        let selectable = i > 0 || g.ty != object_type();
        let dup = g.specs.iter().filter(|(l, _)| l == label).count() > 1;
        if selectable && (self.opts.residuation == ResiduationMode::Full || !matched_any || dup) {
            residual.push((*label, value.clone()));
            let cont = self.cover_clause_specs(
                g,
                h_specs,
                ty_covered,
                i + 1,
                residual,
                covered,
                body,
                rest,
                depth,
                emit,
            )?;
            residual.pop();
            return Ok(cont);
        }
        Ok(true)
    }
}

/// Shifts all variables in a goal by `offset`.
pub fn shift_goal(g: &Goal, offset: VarId) -> Goal {
    match g {
        Goal::Mol(m) => Goal::Mol(MolGoal {
            ty: m.ty,
            id: shift_term(&m.id, offset),
            specs: m
                .specs
                .iter()
                .map(|(l, v)| (*l, shift_term(v, offset)))
                .collect(),
            rules_only: m.rules_only,
        }),
        Goal::Pred { pred, args } => {
            let shifted = shift_atom(
                &RAtom {
                    pred: *pred,
                    args: args.clone(),
                },
                offset,
            );
            Goal::Pred {
                pred: shifted.pred,
                args: shifted.args,
            }
        }
        Goal::Neg(inner) => Goal::Neg(inner.iter().map(|g| shift_goal(g, offset)).collect()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::goal::DirectProgram;
    use clogic_parser::{parse_program, parse_query};
    use folog::builtins::builtin_symbols;

    fn engine_answers(program: &str, query: &str) -> Vec<String> {
        let p = parse_program(program).unwrap();
        let dp = DirectProgram::compile(&p, builtin_symbols());
        let e = DirectEngine::new(&dp, DirectOptions::default());
        let r = e.solve(&parse_query(query).unwrap()).unwrap();
        assert!(r.complete, "search truncated");
        r.answers
            .iter()
            .map(|a| {
                a.iter()
                    .map(|(k, v)| format!("{k}={v}"))
                    .collect::<Vec<_>>()
                    .join(",")
            })
            .collect()
    }

    #[test]
    fn ground_molecule_against_merged_store() {
        // §4: piecewise facts about p; the cross query succeeds.
        let program = "path: p[src => a, dest => b].\npath: p[src => c, dest => d].";
        assert_eq!(
            engine_answers(program, "path: p[src => a, dest => d]"),
            vec![""]
        );
        assert_eq!(
            engine_answers(program, "path: p[src => a, dest => b]"),
            vec![""]
        );
        assert!(engine_answers(program, "path: p[src => z]").is_empty());
        assert!(engine_answers(program, "route: p[src => a]").is_empty());
    }

    #[test]
    fn open_query_enumerates_label_values() {
        let program = "path: p1[src => a, dest => b].\npath: p2[src => c, dest => d].";
        let answers = engine_answers(program, "path: X[src => S, dest => D]");
        assert_eq!(answers, vec!["D=b,S=a,X=p1", "D=d,S=c,X=p2"]);
    }

    #[test]
    fn subset_query_over_multivalued_label() {
        // §5: children => {X, Y} has 3×3 bindings.
        let program = "person: john[children => {bob, bill, joe}].";
        let answers = engine_answers(program, "person: john[children => {X, Y}]");
        assert_eq!(answers.len(), 9);
    }

    #[test]
    fn residuation_across_store_and_rules() {
        // One label pair comes from a fact, the other from a rule: naive
        // whole-molecule unification fails, residuation succeeds.
        let program = "path: p[src => a].\n\
                       dummy: k.\n\
                       path: p[dest => d] :- dummy: k.";
        assert_eq!(
            engine_answers(program, "path: p[src => a, dest => d]"),
            vec![""]
        );
        let open = engine_answers(program, "path: p[dest => D]");
        assert_eq!(open, vec!["D=d"]);
    }

    #[test]
    fn residuation_across_two_rules() {
        // "several rules, each of which deals with partial information
        // about the same object" (§4).
        let program = "seed: s.\n\
                       obj: o[a => 1] :- seed: s.\n\
                       obj: o[b => 2] :- seed: s.";
        assert_eq!(engine_answers(program, "obj: o[a => 1, b => 2]"), vec![""]);
        assert_eq!(
            engine_answers(program, "obj: o[a => A, b => B]"),
            vec!["A=1,B=2"]
        );
    }

    #[test]
    fn order_sorted_type_resolution() {
        let program = "propernp < noun_phrase.\n\
                       propernp: john.\n\
                       commonnp < noun_phrase.";
        assert_eq!(engine_answers(program, "noun_phrase: X"), vec!["X=john"]);
        assert_eq!(engine_answers(program, "propernp: X"), vec!["X=john"]);
        assert!(engine_answers(program, "commonnp: X").is_empty());
    }

    #[test]
    fn paper_noun_phrase_program() {
        // Example 3: the full grammar program, solved directly.
        let program = r#"
            name: john.
            name: bob.
            determiner: the[num => {singular, plural}, def => definite].
            determiner: a[num => singular, def => indef].
            determiner: all[num => plural, def => indef].
            noun: student[num => singular].
            noun: students[num => plural].
            propernp: X[pers => 3, num => singular, def => definite] :-
                name: X.
            commonnp: np(Det, Noun)[pers => 3, num => N, def => D] :-
                determiner: Det[num => N, def => D],
                noun: Noun[num => N].
            propernp < noun_phrase.
            commonnp < noun_phrase.
        "#;
        let answers = engine_answers(program, "noun_phrase: X[num => plural]");
        assert_eq!(answers, vec!["X=np(all, students)", "X=np(the, students)"]);
        // singular: john and bob (propernps), np(the, student), np(a, student)
        let singular = engine_answers(program, "noun_phrase: X[num => singular]");
        assert_eq!(
            singular,
            vec!["X=bob", "X=john", "X=np(a, student)", "X=np(the, student)"]
        );
    }

    #[test]
    fn skolemized_path_rules_with_arithmetic() {
        let program = r#"
            node: a[linkto => b].
            node: b[linkto => c].
            node: c[linkto => d].
            path: id(X, Y)[src => X, dest => Y, length => 1] :-
                node: X[linkto => Y].
            path: id(X, Y)[src => X, dest => Y, length => L] :-
                node: X[linkto => Z],
                path: id(Z, Y)[src => Z, dest => Y, length => LO],
                L is LO + 1.
        "#;
        let answers = engine_answers(program, "path: P[src => a, dest => d, length => L]");
        assert_eq!(answers, vec!["L=3,P=id(a, d)"]);
        let all = engine_answers(program, "path: P[src => a, dest => D]");
        assert_eq!(all.len(), 3);
    }

    #[test]
    fn predicate_goals_and_builtins() {
        let program = "likes(john, tea).\nlikes(bob, coffee).\n\
                       strange(X) :- likes(X, coffee).";
        assert_eq!(engine_answers(program, "likes(john, X)"), vec!["X=tea"]);
        assert_eq!(engine_answers(program, "strange(X)"), vec!["X=bob"]);
        assert_eq!(
            engine_answers(program, "likes(X, Y), X \\= john"),
            vec!["X=bob,Y=coffee"]
        );
        let program2 = "n(3).";
        assert_eq!(
            engine_answers(program2, "n(X), Y is X * X + 1"),
            vec!["X=3,Y=10"]
        );
    }

    #[test]
    fn nested_molecule_query() {
        let program = "person: john[spouse => mary].\nperson: mary[age => 27].";
        assert_eq!(
            engine_answers(program, "person: john[spouse => mary[age => 27]]"),
            vec![""]
        );
        assert!(engine_answers(program, "person: john[spouse => mary[age => 30]]").is_empty());
    }

    #[test]
    fn dynamic_types_via_rules() {
        // A type derived by rule, then queried with a label from a fact.
        let program = "thing: t[color => red].\n\
                       special: X :- thing: X[color => red].";
        assert_eq!(engine_answers(program, "special: X"), vec!["X=t"]);
        // combining the rule-derived type with the stored label
        assert_eq!(
            engine_answers(program, "special: X[color => red]"),
            vec!["X=t"]
        );
    }

    #[test]
    fn bare_object_queries() {
        let program = "person: john[age => 28].";
        let all = engine_answers(program, "object: X");
        // john, 28 are both objects
        assert_eq!(all.len(), 2);
        assert_eq!(engine_answers(program, "object: john"), vec![""]);
        assert!(engine_answers(program, "object: ghost").is_empty());
    }

    #[test]
    fn stats_and_limits() {
        let p = parse_program(
            "edge: a[to => b].\nedge: b[to => a].\n\
                               reach: X[to => Y] :- edge: X[to => Y].\n\
                               reach: X[to => Y] :- edge: X[to => Z], reach: Z[to => Y].",
        )
        .unwrap();
        let dp = DirectProgram::compile(&p, builtin_symbols());
        let e = DirectEngine::new(
            &dp,
            DirectOptions {
                max_depth: Some(30),
                max_steps: Some(5_000),
                ..Default::default()
            },
        );
        let r = e.solve(&parse_query("reach: a[to => Y]").unwrap()).unwrap();
        // cyclic recursion: finds answers but cannot exhaust the tree
        assert!(!r.answers.is_empty());
        assert!(!r.complete);
        assert!(r.stats.steps > 0);
        assert!(r.stats.clause_attempts > 0);
        let d = r.degradation.expect("degradation report");
        assert_eq!(d.strategy, "direct");
        assert!(d.work > 0);
    }

    #[test]
    fn budget_deadline_degrades_gracefully() {
        // Recursion over skolemized ids diverges without the variant loop
        // check catching it (each unrolled subgoal `t: next(next(…))` is
        // structurally fresh); a deadline budget must stop it with the
        // partial answers found before the trip.
        let p = parse_program(
            "t: a.\n\
             t: X :- t: next(X).",
        )
        .unwrap();
        let dp = DirectProgram::compile(&p, builtin_symbols());
        let e = DirectEngine::new(
            &dp,
            DirectOptions {
                max_depth: None,
                max_steps: None,
                budget: Budget::with_deadline(std::time::Duration::from_millis(20)),
                ..Default::default()
            },
        );
        let start = std::time::Instant::now();
        let r = e.solve(&parse_query("t: X").unwrap()).unwrap();
        assert!(start.elapsed() < std::time::Duration::from_secs(1));
        assert!(!r.complete);
        assert!(!r.answers.is_empty());
        let d = r.degradation.expect("degradation report");
        assert_eq!(d.trip, TripKind::Deadline);
        assert_eq!(d.strategy, "direct");
    }

    #[test]
    fn max_solutions_cap() {
        let p = parse_program("t: a.\nt: b.\nt: c.").unwrap();
        let dp = DirectProgram::compile(&p, builtin_symbols());
        let e = DirectEngine::new(
            &dp,
            DirectOptions {
                max_solutions: Some(2),
                ..Default::default()
            },
        );
        let r = e.solve(&parse_query("t: X").unwrap()).unwrap();
        assert_eq!(r.answers.len(), 2);
        assert!(!r.complete);
        assert_eq!(
            r.degradation.expect("degradation report").trip,
            TripKind::Solutions
        );
    }

    #[test]
    fn ground_lookup_and_rterm_roundtrip() {
        let mut ts = TermStore::new();
        let t = RTerm::App(
            clogic_core::sym("id"),
            vec![
                RTerm::Const(clogic_core::Const::Sym(clogic_core::sym("a"))),
                RTerm::Const(clogic_core::Const::Int(1)),
            ],
        );
        assert_eq!(ground_lookup(&ts, &t), None);
        let a = ts.intern_const(clogic_core::Const::Sym(clogic_core::sym("a")));
        let one = ts.intern_const(clogic_core::Const::Int(1));
        let id = ts.intern_app(clogic_core::sym("id"), vec![a, one]);
        assert_eq!(ground_lookup(&ts, &t), Some(id));
        assert_eq!(rterm_of_ground(&ts, id), t);
        assert_eq!(ground_lookup(&ts, &RTerm::Var(0)), None);
    }
}

#[cfg(test)]
mod residuation_mode_tests {
    use super::*;
    use crate::goal::DirectProgram;
    use clogic_parser::{parse_program, parse_query};
    use folog::builtins::builtin_symbols;

    fn answers(program: &str, query: &str, mode: ResiduationMode) -> (Vec<String>, DirectStats) {
        let p = parse_program(program).unwrap();
        let dp = DirectProgram::compile(&p, builtin_symbols());
        let opts = DirectOptions {
            residuation: mode,
            ..DirectOptions::default()
        };
        let r = DirectEngine::new(&dp, opts)
            .solve(&parse_query(query).unwrap())
            .unwrap();
        (
            r.answers
                .iter()
                .map(|a| {
                    a.iter()
                        .map(|(k, v)| format!("{k}={v}"))
                        .collect::<Vec<_>>()
                        .join(",")
                })
                .collect(),
            r.stats,
        )
    }

    const SPLIT: &str = "seed: s.\n\
                         obj: o[a => 1] :- seed: s.\n\
                         obj: o[a => 2] :- seed: s.\n\
                         obj: o[b => 9] :- seed: s.";

    #[test]
    fn full_and_on_failure_agree_here() {
        // Multi-valued intensional label + distinct-label piece: both
        // modes find all four (A, B) combinations.
        let q = "obj: o[a => A, b => B]";
        let (on_failure, s1) = answers(SPLIT, q, ResiduationMode::OnFailure);
        let (full, s2) = answers(SPLIT, q, ResiduationMode::Full);
        assert_eq!(on_failure, vec!["A=1,B=9", "A=2,B=9"]);
        assert_eq!(full, on_failure);
        // Full explores at least as many residuals.
        assert!(s2.residuals >= s1.residuals);
    }

    #[test]
    fn duplicate_labels_complete_in_both_modes() {
        // a => {X, Y} over two rule sources: 4 combinations.
        let q = "obj: o[a => X, a => Y]";
        let (on_failure, _) = answers(SPLIT, q, ResiduationMode::OnFailure);
        let (full, _) = answers(SPLIT, q, ResiduationMode::Full);
        assert_eq!(on_failure.len(), 4, "{on_failure:?}");
        assert_eq!(full, on_failure);
    }

    #[test]
    fn loop_prunes_reported_incomplete() {
        // senior < student + senior rule: the variant loop check fires.
        let src = "student: ann[credits => 24].\n\
                   senior < student.\n\
                   senior: X :- student: X[credits => C], C >= 18.";
        let p = parse_program(src).unwrap();
        let dp = DirectProgram::compile(&p, builtin_symbols());
        let r = DirectEngine::new(&dp, DirectOptions::default())
            .solve(&parse_query("student: X[credits => C]").unwrap())
            .unwrap();
        assert_eq!(r.answers.len(), 1);
        assert!(r.stats.loop_prunes > 0);
        assert!(!r.complete);
        assert_eq!(
            r.degradation.expect("degradation report").trip,
            TripKind::VariantLoop
        );
    }
}
