//! # clogic-engine — direct evaluation over complex objects
//!
//! The "interesting alternative" of §4 of Chen & Warren (PODS 1989):
//! reasoning directly over complex objects, without translating the
//! program into first-order clauses. The engine exploits the clustering
//! information the user provides:
//!
//! * ground molecule facts are merged per object identity into a
//!   clustered [`store::ObjectStore`] with type and label-value indexes —
//!   the paper's `path: p[src ⇒ {a, c}, dest ⇒ {b, d}]` form;
//! * queries and rule bodies resolve whole molecules at once when they
//!   can, and *residuate* — solve part of a molecule against one
//!   fact/rule, keep the rest as a residual goal — when information about
//!   one object is spread across facts and rules;
//! * type pieces are solved order-sortedly against the declared hierarchy
//!   (no type-axiom clauses are executed).
//!
//! The integration tests assert that this engine and the translated
//! first-order route ([`folog`]) produce identical answer sets — the
//! executable form of the paper's Theorem 1.

#![warn(missing_docs)]

pub mod goal;
pub mod solve;
pub mod store;

pub use goal::{compile_atomic, DirectProgram, EmitMode, Goal, MolClause, MolGoal};
pub use solve::{DirectEngine, DirectOptions, DirectResult, DirectStats};
pub use store::{ObjectRecord, ObjectStore};
