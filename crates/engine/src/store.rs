//! The clustered object store: extensional complex-object facts merged
//! per identity.
//!
//! "For extensional databases, we may merge all information about an
//! object together" (§4): the store keeps, per ground object identity,
//! the set of asserted types and a multi-valued label map — the paper's
//! `path: p[src ⇒ {a, c}, dest ⇒ {b, d}]` form. Queries over the store
//! are description-ordering checks plus index lookups; the clustering the
//! user wrote down is preserved instead of being flattened into binary
//! relations.
//!
//! Identities are hash-consed in a `folog` [`TermStore`], so term graphs
//! share structure and identity comparison is integer equality.

use clogic_core::hierarchy::{object_type, TypeHierarchy};
use clogic_core::symbol::Symbol;
use folog::{TermId, TermStore};
use std::collections::{BTreeSet, HashMap};

/// The per-object record: asserted types plus multi-valued labels.
///
/// Labels are stored columnar-style (CSR layout): one flat interned
/// value arena grouped by label, with `starts` marking each label's run.
/// Records are small (a handful of labels), so the occasional mid-arena
/// insert is cheap, while `values` stays a contiguous slice per label —
/// no per-label allocation, no hash map per object.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ObjectRecord {
    /// Types this object has been asserted (or derived) to have.
    pub types: BTreeSet<Symbol>,
    /// Distinct labels, sorted; parallel to `starts`.
    label_keys: Vec<Symbol>,
    /// CSR offsets: `label_keys[i]`'s values occupy
    /// `values[starts[i] as usize..starts[i + 1] as usize]`.
    starts: Vec<u32>,
    /// All label values, grouped by label, insertion-ordered within.
    values: Vec<TermId>,
}

impl ObjectRecord {
    /// Whether the record has a value `v` under `label`.
    pub fn has_label_value(&self, label: Symbol, v: TermId) -> bool {
        self.values(label).contains(&v)
    }

    /// The values under a label (insertion-ordered, deduplicated).
    pub fn values(&self, label: Symbol) -> &[TermId] {
        match self.label_keys.binary_search(&label) {
            Ok(i) => &self.values[self.starts[i] as usize..self.starts[i + 1] as usize],
            Err(_) => &[],
        }
    }

    /// Total number of label pairs.
    pub fn pair_count(&self) -> usize {
        self.values.len()
    }

    /// Labels with their value runs, in sorted label order.
    pub fn labels(&self) -> impl Iterator<Item = (Symbol, &[TermId])> {
        self.label_keys.iter().enumerate().map(|(i, &l)| {
            (
                l,
                &self.values[self.starts[i] as usize..self.starts[i + 1] as usize],
            )
        })
    }

    /// Adds a `(label, value)` pair. Returns `(new, first_for_label)`:
    /// whether the pair was new, and whether it is the first pair stored
    /// under `label` for this record.
    fn add_pair(&mut self, label: Symbol, value: TermId) -> (bool, bool) {
        if self.starts.is_empty() {
            self.starts.push(0);
        }
        match self.label_keys.binary_search(&label) {
            Ok(i) => {
                let (lo, hi) = (self.starts[i] as usize, self.starts[i + 1] as usize);
                if self.values[lo..hi].contains(&value) {
                    return (false, false);
                }
                self.values.insert(hi, value);
                for s in &mut self.starts[i + 1..] {
                    *s += 1;
                }
                (true, false)
            }
            Err(j) => {
                let off = self.starts[j];
                self.label_keys.insert(j, label);
                self.values.insert(off as usize, value);
                self.starts.insert(j + 1, off + 1);
                for s in &mut self.starts[j + 2..] {
                    *s += 1;
                }
                (true, true)
            }
        }
    }
}

/// The clustered store of ground complex objects.
#[derive(Clone, Debug, Default)]
pub struct ObjectStore {
    records: HashMap<TermId, ObjectRecord>,
    /// Insertion order of identities, for deterministic enumeration.
    order: Vec<TermId>,
    /// type → identities asserted with exactly that type symbol.
    by_type: HashMap<Symbol, Vec<TermId>>,
    /// (label, value) → identities carrying that pair.
    by_label_value: HashMap<(Symbol, TermId), Vec<TermId>>,
    /// label → identities carrying any pair with that label.
    by_label: HashMap<Symbol, Vec<TermId>>,
    /// Total label pairs stored.
    pub pair_count: usize,
    /// The load epoch currently being merged (see [`ObjectStore::set_epoch`]).
    epoch: u64,
    /// Epoch of the most recent successful insertion.
    last_growth: u64,
}

impl ObjectStore {
    /// An empty store.
    pub fn new() -> ObjectStore {
        ObjectStore::default()
    }

    /// Number of distinct objects.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True iff no objects.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The record of an identity, if known.
    pub fn record(&self, id: TermId) -> Option<&ObjectRecord> {
        self.records.get(&id)
    }

    /// Sets the load epoch stamped onto subsequent insertions. Deltas are
    /// merged into the clustered store in place (indexes are appended to,
    /// not rebuilt); the stamp lets cumulative-loading callers tell which
    /// epoch last actually grew the store.
    pub fn set_epoch(&mut self, epoch: u64) {
        self.epoch = epoch;
    }

    /// The current load epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The epoch of the most recent insertion that added new information.
    pub fn last_growth(&self) -> u64 {
        self.last_growth
    }

    /// All identities, in insertion order.
    pub fn identities(&self) -> &[TermId] {
        &self.order
    }

    fn entry(&mut self, id: TermId) -> &mut ObjectRecord {
        if !self.records.contains_key(&id) {
            self.order.push(id);
        }
        self.records.entry(id).or_default()
    }

    /// Asserts `ty : id` (dynamic type membership). Returns true if new.
    pub fn add_type(&mut self, id: TermId, ty: Symbol) -> bool {
        let rec = self.entry(id);
        if rec.types.insert(ty) {
            self.by_type.entry(ty).or_default().push(id);
            self.last_growth = self.epoch;
            true
        } else {
            false
        }
    }

    /// Asserts `id[label ⇒ value]`. Returns true if new.
    pub fn add_label(&mut self, id: TermId, label: Symbol, value: TermId) -> bool {
        let rec = self.entry(id);
        let (new, first_for_label) = rec.add_pair(label, value);
        if !new {
            return false;
        }
        self.pair_count += 1;
        self.last_growth = self.epoch;
        self.by_label_value
            .entry((label, value))
            .or_default()
            .push(id);
        if first_for_label {
            self.by_label.entry(label).or_default().push(id);
        }
        true
    }

    /// Identities asserted with a type `τ' ≤ ty` (order-sorted lookup);
    /// for `object` this is every identity.
    pub fn with_type(&self, ty: Symbol, h: &TypeHierarchy) -> Vec<TermId> {
        if ty == object_type() {
            return self.order.clone();
        }
        let mut out: Vec<TermId> = Vec::new();
        for sub in h.subtypes(ty) {
            if let Some(ids) = self.by_type.get(&sub) {
                out.extend(ids.iter().copied());
            }
        }
        out.sort();
        out.dedup();
        out
    }

    /// Identities carrying the pair `(label, value)`.
    pub fn with_label_value(&self, label: Symbol, value: TermId) -> &[TermId] {
        self.by_label_value
            .get(&(label, value))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Identities carrying any pair with `label`.
    pub fn with_label(&self, label: Symbol) -> &[TermId] {
        self.by_label.get(&label).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Whether `id` has (dynamically) a type `τ' ≤ ty`.
    pub fn has_type(&self, id: TermId, ty: Symbol, h: &TypeHierarchy) -> bool {
        if ty == object_type() {
            return self.records.contains_key(&id);
        }
        self.records
            .get(&id)
            .is_some_and(|r| r.types.iter().any(|&t| h.is_subtype(t, ty)))
    }

    /// Renders the store in the paper's merged form, sorted by identity
    /// display (golden tests).
    pub fn display(&self, terms: &TermStore) -> Vec<String> {
        let mut out: Vec<String> = self
            .order
            .iter()
            .map(|&id| {
                let rec = &self.records[&id];
                let tys: Vec<&str> = rec.types.iter().map(|t| t.as_str()).collect();
                let mut labels: Vec<(String, Vec<String>)> = rec
                    .labels()
                    .map(|(l, vs)| {
                        let mut shown: Vec<String> = vs.iter().map(|&v| terms.display(v)).collect();
                        shown.sort();
                        (l.to_string(), shown)
                    })
                    .collect();
                labels.sort();
                let specs: Vec<String> = labels
                    .into_iter()
                    .map(|(l, vs)| {
                        if vs.len() == 1 {
                            format!("{l} => {}", vs[0])
                        } else {
                            format!("{l} => {{{}}}", vs.join(", "))
                        }
                    })
                    .collect();
                format!(
                    "{}: {}[{}]",
                    tys.join("&"),
                    terms.display(id),
                    specs.join(", ")
                )
            })
            .collect();
        out.sort();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clogic_core::symbol::sym;
    use clogic_core::term::Const;

    fn setup() -> (TermStore, ObjectStore) {
        (TermStore::new(), ObjectStore::new())
    }

    #[test]
    fn merge_accumulates_per_object() {
        // §4: path: p[src=>a, dest=>b]. path: p[src=>c, dest=>d].
        let (mut ts, mut os) = setup();
        let p = ts.intern_const(Const::Sym(sym("p")));
        let a = ts.intern_const(Const::Sym(sym("a")));
        let b = ts.intern_const(Const::Sym(sym("b")));
        let c = ts.intern_const(Const::Sym(sym("c")));
        let d = ts.intern_const(Const::Sym(sym("d")));
        os.add_type(p, sym("path"));
        assert!(os.add_label(p, sym("src"), a));
        assert!(os.add_label(p, sym("dest"), b));
        assert!(os.add_label(p, sym("src"), c));
        assert!(os.add_label(p, sym("dest"), d));
        assert!(!os.add_label(p, sym("src"), a)); // dedup
        assert_eq!(os.len(), 1);
        assert_eq!(os.pair_count, 4);
        let rec = os.record(p).unwrap();
        assert_eq!(rec.values(sym("src")), &[a, c]);
        assert!(rec.has_label_value(sym("dest"), d));
        assert!(!rec.has_label_value(sym("dest"), a));
        assert_eq!(rec.pair_count(), 4);
        assert_eq!(
            os.display(&ts),
            vec!["path: p[dest => {b, d}, src => {a, c}]"]
        );
    }

    #[test]
    fn type_indexes_and_hierarchy() {
        let (mut ts, mut os) = setup();
        let mut h = TypeHierarchy::new();
        h.declare(sym("student"), sym("person"));
        let ann = ts.intern_const(Const::Sym(sym("ann")));
        let bob = ts.intern_const(Const::Sym(sym("bob")));
        os.add_type(ann, sym("student"));
        os.add_type(bob, sym("person"));
        // order-sorted: students are persons
        assert_eq!(os.with_type(sym("person"), &h), {
            let mut v = vec![ann, bob];
            v.sort();
            v
        });
        assert_eq!(os.with_type(sym("student"), &h), vec![ann]);
        assert!(os.has_type(ann, sym("person"), &h));
        assert!(os.has_type(ann, sym("student"), &h));
        assert!(!os.has_type(bob, sym("student"), &h));
        // object type covers everything
        assert!(os.has_type(ann, object_type(), &h));
        assert_eq!(os.with_type(object_type(), &h).len(), 2);
    }

    #[test]
    fn label_value_index() {
        let (mut ts, mut os) = setup();
        let john = ts.intern_const(Const::Sym(sym("john")));
        let sue = ts.intern_const(Const::Sym(sym("sue")));
        let bob = ts.intern_const(Const::Sym(sym("bob")));
        os.add_label(john, sym("children"), bob);
        os.add_label(sue, sym("children"), bob);
        assert_eq!(os.with_label_value(sym("children"), bob), &[john, sue]);
        assert_eq!(os.with_label(sym("children")), &[john, sue]);
        assert!(os.with_label_value(sym("children"), john).is_empty());
        assert!(os.with_label(sym("spouse")).is_empty());
    }

    #[test]
    fn interleaved_labels_keep_contiguous_runs() {
        // CSR layout: values for a label stay a contiguous slice even when
        // pairs for different labels arrive interleaved.
        let (mut ts, mut os) = setup();
        let p = ts.intern_const(Const::Sym(sym("p")));
        let ids: Vec<TermId> = (0..6)
            .map(|i| ts.intern_const(Const::Sym(sym(&format!("v{i}")))))
            .collect();
        for (i, &v) in ids.iter().enumerate() {
            let label = if i % 2 == 0 { sym("even") } else { sym("odd") };
            assert!(os.add_label(p, label, v));
        }
        let rec = os.record(p).unwrap();
        assert_eq!(rec.values(sym("even")), &[ids[0], ids[2], ids[4]]);
        assert_eq!(rec.values(sym("odd")), &[ids[1], ids[3], ids[5]]);
        assert_eq!(rec.pair_count(), 6);
        assert_eq!(rec.labels().count(), 2);
        // by_label records the object once per label, not once per pair.
        assert_eq!(os.with_label(sym("even")), &[p]);
        assert_eq!(os.with_label(sym("odd")), &[p]);
    }

    #[test]
    fn unknown_identity() {
        let (mut ts, os) = setup();
        let h = TypeHierarchy::new();
        let x = ts.intern_const(Const::Sym(sym("x")));
        assert!(os.record(x).is_none());
        assert!(!os.has_type(x, object_type(), &h));
        assert!(os.is_empty());
    }

    #[test]
    fn epoch_stamps_growth() {
        let (mut ts, mut os) = setup();
        let p = ts.intern_const(Const::Sym(sym("p")));
        let a = ts.intern_const(Const::Sym(sym("a")));
        os.set_epoch(3);
        assert_eq!(os.epoch(), 3);
        os.add_type(p, sym("path"));
        assert_eq!(os.last_growth(), 3);
        os.set_epoch(4);
        // A duplicate insertion does not count as growth…
        os.add_type(p, sym("path"));
        assert_eq!(os.last_growth(), 3);
        // …but new information does.
        os.add_label(p, sym("src"), a);
        assert_eq!(os.last_growth(), 4);
    }

    #[test]
    fn compound_identities() {
        let (mut ts, mut os) = setup();
        let a = ts.intern_const(Const::Sym(sym("a")));
        let b = ts.intern_const(Const::Sym(sym("b")));
        let id_ab = ts.intern_app(sym("id"), vec![a, b]);
        os.add_type(id_ab, sym("path"));
        os.add_label(id_ab, sym("src"), a);
        assert_eq!(os.display(&ts), vec!["path: id(a, b)[src => a]"]);
    }
}
