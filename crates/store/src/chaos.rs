//! Fault injection at the storage seam.
//!
//! [`ChaosStorage`] wraps any [`Storage`] and counts every operation.
//! When the count reaches a configured trigger, it injects one fault and
//! then passes everything through untouched — modelling a process that
//! crashes (or a disk that hiccups) at exactly one point and is then
//! restarted. Sweeping the trigger across the operation count of a clean
//! run visits **every** I/O boundary of the durability protocol, which is
//! how `tests/recovery.rs` proves crash recovery is sound at all of them.

use crate::storage::{Storage, StoreError};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The kind of fault to inject.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fault {
    /// The operation fails cleanly: an error is returned and nothing is
    /// written.
    Fail,
    /// A torn write: only a prefix of the data reaches the file, then the
    /// operation errors — what a crash mid-`write(2)` leaves behind.
    ShortWrite,
    /// The data is silently written **twice** and the operation reports
    /// success — modelling a retried append whose first attempt actually
    /// landed.
    DuplicateAppend,
    /// The data is fully written, then the file loses a few tail bytes
    /// and the operation errors — a crash after the page cache absorbed
    /// the write but before the final sectors hit the platter.
    TruncateTail,
}

impl Fault {
    /// All injectable faults, for sweep loops.
    pub const ALL: [Fault; 4] = [
        Fault::Fail,
        Fault::ShortWrite,
        Fault::DuplicateAppend,
        Fault::TruncateTail,
    ];
}

/// A [`Storage`] wrapper that injects one [`Fault`] at the `trigger`-th
/// operation (1-based). A trigger of 0 never fires, which turns the
/// wrapper into a pure operation counter for measuring clean runs.
pub struct ChaosStorage<S> {
    inner: S,
    /// Shared so a sweep can read the count after the storage has been
    /// boxed into (and consumed by) the system under test.
    ops: Arc<AtomicU64>,
    trigger: u64,
    fault: Fault,
    tripped: bool,
}

impl<S: Storage> ChaosStorage<S> {
    /// Wraps `inner`, injecting `fault` at operation number `trigger`.
    pub fn new(inner: S, trigger: u64, fault: Fault) -> ChaosStorage<S> {
        ChaosStorage {
            inner,
            ops: Arc::new(AtomicU64::new(0)),
            trigger,
            fault,
            tripped: false,
        }
    }

    /// Operations performed so far (including the faulted one).
    pub fn ops(&self) -> u64 {
        self.ops.load(Ordering::Relaxed)
    }

    /// A handle on the operation counter that stays readable after the
    /// storage is moved into the system under test.
    pub fn op_counter(&self) -> Arc<AtomicU64> {
        Arc::clone(&self.ops)
    }

    /// Whether the fault has fired.
    pub fn tripped(&self) -> bool {
        self.tripped
    }

    /// Counts one operation; true when the fault fires on it.
    fn strike(&mut self) -> bool {
        let n = self.ops.fetch_add(1, Ordering::Relaxed) + 1;
        if !self.tripped && self.trigger != 0 && n == self.trigger {
            self.tripped = true;
            true
        } else {
            false
        }
    }

    fn injected(&self, op: &'static str, file: &str) -> StoreError {
        StoreError::new(op, file, format!("injected {:?} fault", self.fault))
    }

    /// Chops up to 3 bytes (but at least 1, when possible) off `file`.
    fn tear_tail(&mut self, file: &str) -> Result<(), StoreError> {
        if let Some(bytes) = self.inner.read(file)? {
            let cut = (bytes.len() as u64).min(3).max(u64::from(!bytes.is_empty()));
            self.inner.truncate(file, bytes.len() as u64 - cut)?;
        }
        Ok(())
    }
}

impl<S: Storage> Storage for ChaosStorage<S> {
    fn read(&mut self, file: &str) -> Result<Option<Vec<u8>>, StoreError> {
        // Reads cannot tear or duplicate; every fault degrades to Fail.
        if self.strike() {
            return Err(self.injected("read", file));
        }
        self.inner.read(file)
    }

    fn write(&mut self, file: &str, data: &[u8]) -> Result<(), StoreError> {
        if self.strike() {
            return match self.fault {
                Fault::Fail => Err(self.injected("write", file)),
                Fault::ShortWrite => {
                    self.inner.write(file, &data[..data.len() / 2])?;
                    Err(self.injected("write", file))
                }
                Fault::DuplicateAppend => {
                    // A replace applied twice is just a replace.
                    self.inner.write(file, data)?;
                    self.inner.write(file, data)
                }
                Fault::TruncateTail => {
                    self.inner.write(file, data)?;
                    self.tear_tail(file)?;
                    Err(self.injected("write", file))
                }
            };
        }
        self.inner.write(file, data)
    }

    fn append(&mut self, file: &str, data: &[u8]) -> Result<(), StoreError> {
        if self.strike() {
            return match self.fault {
                Fault::Fail => Err(self.injected("append", file)),
                Fault::ShortWrite => {
                    self.inner.append(file, &data[..data.len() / 2])?;
                    Err(self.injected("append", file))
                }
                Fault::DuplicateAppend => {
                    self.inner.append(file, data)?;
                    self.inner.append(file, data)
                }
                Fault::TruncateTail => {
                    self.inner.append(file, data)?;
                    self.tear_tail(file)?;
                    Err(self.injected("append", file))
                }
            };
        }
        self.inner.append(file, data)
    }

    fn truncate(&mut self, file: &str, len: u64) -> Result<(), StoreError> {
        if self.strike() && self.fault != Fault::DuplicateAppend {
            return Err(self.injected("truncate", file));
        }
        self.inner.truncate(file, len)
    }

    fn sync(&mut self, file: &str) -> Result<(), StoreError> {
        if self.strike() && self.fault != Fault::DuplicateAppend {
            return Err(self.injected("sync", file));
        }
        self.inner.sync(file)
    }

    fn rename(&mut self, from: &str, to: &str) -> Result<(), StoreError> {
        if self.strike() && self.fault != Fault::DuplicateAppend {
            return Err(self.injected("rename", from));
        }
        self.inner.rename(from, to)
    }

    fn remove(&mut self, file: &str) -> Result<(), StoreError> {
        if self.strike() && self.fault != Fault::DuplicateAppend {
            return Err(self.injected("remove", file));
        }
        self.inner.remove(file)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::MemStorage;

    #[test]
    fn trigger_zero_only_counts() {
        let mem = MemStorage::new();
        let mut chaos = ChaosStorage::new(mem.clone(), 0, Fault::Fail);
        chaos.append("f", b"abc").unwrap();
        chaos.sync("f").unwrap();
        assert_eq!(chaos.ops(), 2);
        assert!(!chaos.tripped());
        assert_eq!(mem.len("f"), Some(3));
    }

    #[test]
    fn fail_leaves_no_bytes() {
        let mem = MemStorage::new();
        let mut chaos = ChaosStorage::new(mem.clone(), 1, Fault::Fail);
        assert!(chaos.append("f", b"abcdef").is_err());
        assert_eq!(mem.len("f"), None);
        // Subsequent operations pass through.
        chaos.append("f", b"xy").unwrap();
        assert_eq!(mem.len("f"), Some(2));
    }

    #[test]
    fn short_write_persists_a_prefix_then_errors() {
        let mem = MemStorage::new();
        let mut chaos = ChaosStorage::new(mem.clone(), 1, Fault::ShortWrite);
        assert!(chaos.append("f", b"abcdef").is_err());
        assert_eq!(mem.clone().read("f").unwrap().unwrap(), b"abc");
    }

    #[test]
    fn duplicate_append_doubles_and_succeeds() {
        let mem = MemStorage::new();
        let mut chaos = ChaosStorage::new(mem.clone(), 1, Fault::DuplicateAppend);
        chaos.append("f", b"ab").unwrap();
        assert_eq!(mem.clone().read("f").unwrap().unwrap(), b"abab");
    }

    #[test]
    fn truncate_tail_tears_the_end() {
        let mem = MemStorage::new();
        let mut chaos = ChaosStorage::new(mem.clone(), 1, Fault::TruncateTail);
        assert!(chaos.append("f", b"abcdef").is_err());
        assert_eq!(mem.clone().read("f").unwrap().unwrap(), b"abc");
    }
}
