//! Fault injection at the storage seam.
//!
//! [`ChaosStorage`] wraps any [`Storage`] and counts every operation.
//! When the count reaches a configured trigger, it injects one fault and
//! then passes everything through untouched — modelling a process that
//! crashes (or a disk that hiccups) at exactly one point and is then
//! restarted. Sweeping the trigger across the operation count of a clean
//! run visits **every** I/O boundary of the durability protocol, which is
//! how `tests/recovery.rs` proves crash recovery is sound at all of them.

use crate::storage::{Storage, StoreError};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The kind of fault to inject.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fault {
    /// The operation fails cleanly: an error is returned and nothing is
    /// written.
    Fail,
    /// A torn write: only a prefix of the data reaches the file, then the
    /// operation errors — what a crash mid-`write(2)` leaves behind.
    ShortWrite,
    /// The data is silently written **twice** and the operation reports
    /// success — modelling a retried append whose first attempt actually
    /// landed.
    DuplicateAppend,
    /// The data is fully written, then the file loses a few tail bytes
    /// and the operation errors — a crash after the page cache absorbed
    /// the write but before the final sectors hit the platter.
    TruncateTail,
}

impl Fault {
    /// All injectable faults, for sweep loops.
    pub const ALL: [Fault; 4] = [
        Fault::Fail,
        Fault::ShortWrite,
        Fault::DuplicateAppend,
        Fault::TruncateTail,
    ];
}

/// A [`Storage`] wrapper that injects a [`Fault`] starting at the
/// `trigger`-th operation (1-based). A trigger of 0 never fires, which
/// turns the wrapper into a pure operation counter for measuring clean
/// runs.
///
/// Two firing modes:
///
/// * [`ChaosStorage::new`] — **one-shot**: the fault fires exactly once,
///   modelling a process crash or a single disk hiccup followed by a
///   restart;
/// * [`ChaosStorage::intermittent`] — **burst**: the fault fires on
///   `burst` consecutive operations starting at `trigger`, then the
///   storage *heals* and passes everything through — modelling a flaky
///   disk or a network mount that drops out and comes back. This is what
///   exercises retry/backoff paths: a retry loop keeps striking the fault
///   until the burst is exhausted, then succeeds.
pub struct ChaosStorage<S> {
    inner: S,
    /// Shared so a sweep can read the count after the storage has been
    /// boxed into (and consumed by) the system under test.
    ops: Arc<AtomicU64>,
    trigger: u64,
    /// Consecutive faulted operations before the storage heals.
    burst: u64,
    /// Faults injected so far (shared for the same reason as `ops`).
    fired: Arc<AtomicU64>,
    fault: Fault,
}

impl<S: Storage> ChaosStorage<S> {
    /// Wraps `inner`, injecting `fault` exactly once, at operation number
    /// `trigger`. A trigger of 0 never fires (pure operation counter) —
    /// the probe configuration clean-run sweeps measure with.
    pub fn new(inner: S, trigger: u64, fault: Fault) -> ChaosStorage<S> {
        ChaosStorage::intermittent(inner, trigger, u64::from(trigger != 0), fault)
    }

    /// Wraps `inner`, injecting `fault` on `burst` consecutive operations
    /// starting at operation number `trigger`, after which the storage
    /// heals. A trigger of 0 means **from the very first operation** (an
    /// outage already in progress when the store is opened): exactly
    /// `burst` operations fault, then the storage heals, same as any
    /// other trigger. `burst == 0` never fires (pure counter).
    pub fn intermittent(inner: S, trigger: u64, burst: u64, fault: Fault) -> ChaosStorage<S> {
        ChaosStorage {
            inner,
            ops: Arc::new(AtomicU64::new(0)),
            trigger: trigger.max(1),
            burst,
            fired: Arc::new(AtomicU64::new(0)),
            fault,
        }
    }

    /// Operations performed so far (including the faulted ones).
    pub fn ops(&self) -> u64 {
        self.ops.load(Ordering::Relaxed)
    }

    /// A handle on the operation counter that stays readable after the
    /// storage is moved into the system under test.
    pub fn op_counter(&self) -> Arc<AtomicU64> {
        Arc::clone(&self.ops)
    }

    /// Whether the fault has fired at least once.
    pub fn tripped(&self) -> bool {
        self.fired.load(Ordering::Relaxed) > 0
    }

    /// Faults injected so far (≤ `burst`); a handle that stays readable
    /// after the storage moves into the system under test.
    pub fn fault_counter(&self) -> Arc<AtomicU64> {
        Arc::clone(&self.fired)
    }

    /// True once the whole burst has been delivered and the storage is
    /// passing operations through again.
    pub fn healed(&self) -> bool {
        self.fired.load(Ordering::Relaxed) >= self.burst
    }

    /// Counts one operation; true when the fault fires on it.
    fn strike(&mut self) -> bool {
        self.strike_if(true)
    }

    /// Counts one operation; true when the fault fires on it. Pass
    /// `can_fault = false` for operations the configured fault cannot
    /// express (duplicating a sync is a no-op): the operation is still
    /// counted, but no burst slot is consumed — the fault lands on the
    /// next operation it *can* express itself on.
    fn strike_if(&mut self, can_fault: bool) -> bool {
        let n = self.ops.fetch_add(1, Ordering::Relaxed) + 1;
        let fired = self.fired.load(Ordering::Relaxed);
        if can_fault && n >= self.trigger && fired < self.burst {
            self.fired.store(fired + 1, Ordering::Relaxed);
            true
        } else {
            false
        }
    }

    /// Injected faults model hiccups a restart (or a retry) can outlive,
    /// so they are **transient** — this is what lets
    /// [`RetryingStorage`](crate::retry::RetryingStorage) absorb them.
    fn injected(&self, op: &'static str, file: &str) -> StoreError {
        StoreError::transient(op, file, format!("injected {:?} fault", self.fault))
    }

    /// Chops up to 3 bytes (but at least 1, when possible) off `file`.
    fn tear_tail(&mut self, file: &str) -> Result<(), StoreError> {
        if let Some(bytes) = self.inner.read(file)? {
            let cut = (bytes.len() as u64).min(3).max(u64::from(!bytes.is_empty()));
            self.inner.truncate(file, bytes.len() as u64 - cut)?;
        }
        Ok(())
    }
}

impl<S: Storage> Storage for ChaosStorage<S> {
    fn read(&mut self, file: &str) -> Result<Option<Vec<u8>>, StoreError> {
        // Reads cannot tear or duplicate; every fault degrades to Fail.
        if self.strike() {
            return Err(self.injected("read", file));
        }
        self.inner.read(file)
    }

    fn write(&mut self, file: &str, data: &[u8]) -> Result<(), StoreError> {
        if self.strike() {
            return match self.fault {
                Fault::Fail => Err(self.injected("write", file)),
                Fault::ShortWrite => {
                    self.inner.write(file, &data[..data.len() / 2])?;
                    Err(self.injected("write", file))
                }
                Fault::DuplicateAppend => {
                    // A replace applied twice is just a replace.
                    self.inner.write(file, data)?;
                    self.inner.write(file, data)
                }
                Fault::TruncateTail => {
                    self.inner.write(file, data)?;
                    self.tear_tail(file)?;
                    Err(self.injected("write", file))
                }
            };
        }
        self.inner.write(file, data)
    }

    fn append(&mut self, file: &str, data: &[u8]) -> Result<(), StoreError> {
        if self.strike() {
            return match self.fault {
                Fault::Fail => Err(self.injected("append", file)),
                Fault::ShortWrite => {
                    self.inner.append(file, &data[..data.len() / 2])?;
                    Err(self.injected("append", file))
                }
                Fault::DuplicateAppend => {
                    self.inner.append(file, data)?;
                    self.inner.append(file, data)
                }
                Fault::TruncateTail => {
                    self.inner.append(file, data)?;
                    self.tear_tail(file)?;
                    Err(self.injected("append", file))
                }
            };
        }
        self.inner.append(file, data)
    }

    fn truncate(&mut self, file: &str, len: u64) -> Result<(), StoreError> {
        if self.strike_if(self.fault != Fault::DuplicateAppend) {
            return Err(self.injected("truncate", file));
        }
        self.inner.truncate(file, len)
    }

    fn sync(&mut self, file: &str) -> Result<(), StoreError> {
        if self.strike_if(self.fault != Fault::DuplicateAppend) {
            return Err(self.injected("sync", file));
        }
        self.inner.sync(file)
    }

    fn rename(&mut self, from: &str, to: &str) -> Result<(), StoreError> {
        if self.strike_if(self.fault != Fault::DuplicateAppend) {
            return Err(self.injected("rename", from));
        }
        self.inner.rename(from, to)
    }

    fn remove(&mut self, file: &str) -> Result<(), StoreError> {
        if self.strike_if(self.fault != Fault::DuplicateAppend) {
            return Err(self.injected("remove", file));
        }
        self.inner.remove(file)
    }

    fn len(&mut self, file: &str) -> Result<Option<u64>, StoreError> {
        // A metadata probe, like `breaker_open`: not counted as an
        // operation and never faulted, so clean-run op-count sweeps stay
        // stable and the retry layer's torn-append detection can see the
        // file's true length even mid-outage.
        self.inner.len(file)
    }

    fn breaker_open(&self) -> bool {
        // Chaos injects faults but holds no breaker of its own; report
        // the wrapped storage's state so a `RetryingStorage` stacked
        // *inside* the chaos layer stays observable through it.
        self.inner.breaker_open()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::MemStorage;

    #[test]
    fn trigger_zero_only_counts() {
        let mem = MemStorage::new();
        let mut chaos = ChaosStorage::new(mem.clone(), 0, Fault::Fail);
        chaos.append("f", b"abc").unwrap();
        chaos.sync("f").unwrap();
        assert_eq!(chaos.ops(), 2);
        assert!(!chaos.tripped());
        assert_eq!(mem.len("f"), Some(3));
    }

    #[test]
    fn fail_leaves_no_bytes() {
        let mem = MemStorage::new();
        let mut chaos = ChaosStorage::new(mem.clone(), 1, Fault::Fail);
        assert!(chaos.append("f", b"abcdef").is_err());
        assert_eq!(mem.len("f"), None);
        // Subsequent operations pass through.
        chaos.append("f", b"xy").unwrap();
        assert_eq!(mem.len("f"), Some(2));
    }

    #[test]
    fn short_write_persists_a_prefix_then_errors() {
        let mem = MemStorage::new();
        let mut chaos = ChaosStorage::new(mem.clone(), 1, Fault::ShortWrite);
        assert!(chaos.append("f", b"abcdef").is_err());
        assert_eq!(mem.clone().read("f").unwrap().unwrap(), b"abc");
    }

    #[test]
    fn duplicate_append_doubles_and_succeeds() {
        let mem = MemStorage::new();
        let mut chaos = ChaosStorage::new(mem.clone(), 1, Fault::DuplicateAppend);
        chaos.append("f", b"ab").unwrap();
        assert_eq!(mem.clone().read("f").unwrap().unwrap(), b"abab");
    }

    #[test]
    fn intermittent_faults_for_burst_then_heals() {
        let mem = MemStorage::new();
        let mut chaos = ChaosStorage::intermittent(mem.clone(), 2, 3, Fault::Fail);
        chaos.append("f", b"a").unwrap(); // op 1: clean
        assert!(!chaos.tripped());
        assert!(chaos.append("f", b"b").is_err()); // op 2: fault 1
        assert!(chaos.append("f", b"c").is_err()); // op 3: fault 2
        assert!(chaos.append("f", b"d").is_err()); // op 4: fault 3
        assert!(chaos.tripped());
        assert!(chaos.healed());
        chaos.append("f", b"e").unwrap(); // op 5: healed
        assert_eq!(mem.clone().read("f").unwrap().unwrap(), b"ae");
        assert_eq!(chaos.ops(), 5);
        assert_eq!(chaos.fault_counter().load(Ordering::Relaxed), 3);
    }

    #[test]
    fn intermittent_trigger_zero_fires_from_first_op_then_heals() {
        // An outage already in progress when the store is opened: the
        // very first operation faults, exactly `burst` ops fault in
        // total, then the storage heals.
        let mem = MemStorage::new();
        let mut chaos = ChaosStorage::intermittent(mem.clone(), 0, 2, Fault::Fail);
        assert!(chaos.append("f", b"a").is_err()); // op 1: fault 1
        assert!(chaos.append("f", b"b").is_err()); // op 2: fault 2
        assert!(chaos.healed());
        chaos.append("f", b"c").unwrap(); // op 3: healed
        assert_eq!(mem.clone().read("f").unwrap().unwrap(), b"c");
        assert_eq!(chaos.fault_counter().load(Ordering::Relaxed), 2);
    }

    #[test]
    fn duplicate_append_burst_spends_no_slots_on_syncs() {
        // A burst of 2 DuplicateAppend faults over an append/sync/append
        // sequence: the sync cannot express a duplicate, so both faults
        // land on the appends and each one doubles.
        let mem = MemStorage::new();
        let mut chaos = ChaosStorage::intermittent(mem.clone(), 0, 2, Fault::DuplicateAppend);
        chaos.append("f", b"a").unwrap(); // fault 1: doubled
        chaos.sync("f").unwrap(); // counted, no slot spent
        chaos.append("f", b"b").unwrap(); // fault 2: doubled
        assert!(chaos.healed());
        chaos.append("f", b"c").unwrap(); // healed
        assert_eq!(mem.clone().read("f").unwrap().unwrap(), b"aabbc");
        assert_eq!(chaos.ops(), 4);
    }

    #[test]
    fn breaker_state_is_visible_through_the_chaos_wrapper() {
        use crate::retry::{RetryPolicy, RetryingStorage, Sleeper};
        use std::time::Duration;

        // Retry inside, chaos outside: the chaos wrapper forwards the
        // inner breaker's state instead of masking it.
        let policy = RetryPolicy {
            max_retries: 0,
            base_backoff: Duration::ZERO,
            max_backoff: Duration::ZERO,
            breaker_threshold: 1,
            probe_after: u32::MAX,
        };
        let sleeper: Sleeper = Arc::new(|_| {});
        let retry = RetryingStorage::with_sleeper(MemStorage::new(), policy, sleeper);
        let mut chaos = ChaosStorage::new(retry, 0, Fault::Fail);
        assert!(!chaos.breaker_open());
        // MemStorage truncate of a missing file is a permanent error;
        // with threshold 1 it opens the inner breaker immediately.
        assert!(chaos.truncate("missing", 0).is_err());
        assert!(chaos.breaker_open());
    }

    #[test]
    fn retrying_storage_reports_breaker_over_trigger_zero_chaos() {
        use crate::retry::{RetryPolicy, RetryingStorage, Sleeper};
        use std::time::Duration;

        // Chaos inside, retry outside — the tenant-storage stacking: a
        // disk that is down from the very first operation exhausts the
        // retry budget, opens the breaker, and `breaker_open()` says so.
        let policy = RetryPolicy {
            max_retries: 1,
            base_backoff: Duration::ZERO,
            max_backoff: Duration::ZERO,
            breaker_threshold: 2,
            probe_after: u32::MAX,
        };
        let sleeper: Sleeper = Arc::new(|_| {});
        let chaos = ChaosStorage::intermittent(MemStorage::new(), 0, u64::MAX, Fault::Fail);
        let mut retry = RetryingStorage::with_sleeper(chaos, policy, sleeper);
        assert!(retry.append("f", b"a").is_err()); // failure 1
        assert!(!retry.breaker_open());
        assert!(retry.append("f", b"a").is_err()); // failure 2 → open
        assert!(retry.breaker_open());
    }

    #[test]
    fn intermittent_zero_burst_never_fires() {
        let mem = MemStorage::new();
        let mut chaos = ChaosStorage::intermittent(mem, 1, 0, Fault::Fail);
        chaos.append("f", b"a").unwrap();
        assert!(!chaos.tripped());
        assert!(chaos.healed());
    }

    #[test]
    fn injected_faults_are_transient() {
        let mem = MemStorage::new();
        let mut chaos = ChaosStorage::new(mem, 1, Fault::Fail);
        let err = chaos.append("f", b"abc").unwrap_err();
        assert!(err.is_transient());
    }

    #[test]
    fn truncate_tail_tears_the_end() {
        let mem = MemStorage::new();
        let mut chaos = ChaosStorage::new(mem.clone(), 1, Fault::TruncateTail);
        assert!(chaos.append("f", b"abcdef").is_err());
        assert_eq!(mem.clone().read("f").unwrap().unwrap(), b"abc");
    }
}
