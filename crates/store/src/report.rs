//! The structured account of what recovery found and did.
//!
//! Recovery never panics and never silently discards state: everything
//! unusual — a torn tail, a duplicate record, an identity drift — lands
//! in the [`RecoveryReport`] the caller gets back alongside the recovered
//! session.

use crate::wal::Corruption;
use std::fmt;

/// Where a piece of corruption was found.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CorruptionSite {
    /// The store file (`wal.log` / `snapshot.clg`).
    pub file: String,
    /// What was wrong.
    pub corruption: Corruption,
}

/// A semantic problem found while *replaying* structurally valid records.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RecoveryIssue {
    /// The snapshot decoded but its program text failed to parse; the
    /// store is refused rather than replayed onto the wrong base.
    SnapshotUnusable {
        /// The parse failure.
        message: String,
    },
    /// A CRC-valid WAL record's source failed to parse. Replay stops at
    /// the record and the log is truncated there.
    RecordUnusable {
        /// Epoch the record claimed.
        epoch: u64,
        /// The parse failure.
        message: String,
    },
    /// Replay produced a different epoch than the record had recorded;
    /// the recorded value was adopted.
    EpochDrift {
        /// Epoch replay produced.
        replayed: u64,
        /// Epoch the record carried.
        recorded: u64,
    },
    /// Replay minted a different skolem counter than the record had
    /// recorded — object identities would drift — so the recorded value
    /// was adopted.
    SkolemDrift {
        /// Counter replay produced.
        replayed: u64,
        /// Counter the record carried.
        recorded: u64,
    },
}

impl fmt::Display for RecoveryIssue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecoveryIssue::SnapshotUnusable { message } => {
                write!(f, "snapshot unusable: {message}")
            }
            RecoveryIssue::RecordUnusable { epoch, message } => {
                write!(f, "record for epoch {epoch} unusable: {message}")
            }
            RecoveryIssue::EpochDrift { replayed, recorded } => {
                write!(f, "epoch drift: replayed {replayed}, recorded {recorded}")
            }
            RecoveryIssue::SkolemDrift { replayed, recorded } => write!(
                f,
                "skolem-counter drift: replayed {replayed}, recorded {recorded}"
            ),
        }
    }
}

/// What recovery found, dropped, and restored.
#[derive(Clone, Debug, Default)]
pub struct RecoveryReport {
    /// Epoch of the snapshot that was restored, if one was.
    pub snapshot_epoch: Option<u64>,
    /// WAL records replayed into the session.
    pub records_replayed: usize,
    /// Of the replayed records, how many were load (assert) records.
    pub loads_replayed: usize,
    /// Of the replayed records, how many were retract records.
    pub retracts_replayed: usize,
    /// WAL records skipped as duplicates (epoch already covered — left
    /// behind by a retried append or an interrupted compaction).
    pub records_skipped: usize,
    /// The session epoch after recovery.
    pub recovered_epoch: u64,
    /// New length of the WAL after dropping a torn/corrupt tail, if that
    /// happened.
    pub wal_truncated_to: Option<u64>,
    /// Structural corruption found (and neutralized) during the scan.
    pub corruption: Vec<CorruptionSite>,
    /// Semantic issues found during replay.
    pub issues: Vec<RecoveryIssue>,
    /// Whether the storage's circuit breaker (if it has one — see
    /// [`RetryingStorage`](crate::retry::RetryingStorage)) was open when
    /// the report was built: persistence suspended, session read-only.
    pub breaker_open: bool,
}

impl RecoveryReport {
    /// True when recovery found nothing unusual at all.
    pub fn is_clean(&self) -> bool {
        self.corruption.is_empty() && self.issues.is_empty() && self.records_skipped == 0
    }
}

impl clogic_obs::Render for RecoveryReport {
    fn render_text(&self) -> String {
        self.to_string()
    }

    fn render_json(&self) -> clogic_obs::Json {
        use clogic_obs::Json;
        Json::Object(vec![
            (
                "snapshot_epoch".into(),
                match self.snapshot_epoch {
                    Some(e) => Json::U64(e),
                    None => Json::Null,
                },
            ),
            (
                "records_replayed".into(),
                Json::U64(self.records_replayed as u64),
            ),
            (
                "loads_replayed".into(),
                Json::U64(self.loads_replayed as u64),
            ),
            (
                "retracts_replayed".into(),
                Json::U64(self.retracts_replayed as u64),
            ),
            (
                "records_skipped".into(),
                Json::U64(self.records_skipped as u64),
            ),
            ("recovered_epoch".into(), Json::U64(self.recovered_epoch)),
            (
                "wal_truncated_to".into(),
                match self.wal_truncated_to {
                    Some(len) => Json::U64(len),
                    None => Json::Null,
                },
            ),
            (
                "corruption".into(),
                Json::Array(
                    self.corruption
                        .iter()
                        .map(|c| {
                            Json::Object(vec![
                                ("file".into(), Json::str(c.file.clone())),
                                ("corruption".into(), Json::str(c.corruption.to_string())),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "issues".into(),
                Json::Array(
                    self.issues
                        .iter()
                        .map(|i| Json::str(i.to_string()))
                        .collect(),
                ),
            ),
            ("breaker_open".into(), Json::Bool(self.breaker_open)),
            ("clean".into(), Json::Bool(self.is_clean())),
        ])
    }
}

impl fmt::Display for RecoveryReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "recovered to epoch {}", self.recovered_epoch)?;
        match self.snapshot_epoch {
            Some(e) => write!(f, " (snapshot at epoch {e}", )?,
            None => write!(f, " (no snapshot")?,
        }
        write!(
            f,
            ", {} record{} replayed",
            self.records_replayed,
            if self.records_replayed == 1 { "" } else { "s" }
        )?;
        if self.retracts_replayed > 0 {
            write!(
                f,
                " [{} assert(s), {} retract(s)]",
                self.loads_replayed, self.retracts_replayed
            )?;
        }
        if self.records_skipped > 0 {
            write!(f, ", {} duplicate(s) skipped", self.records_skipped)?;
        }
        write!(f, ")")?;
        if let Some(len) = self.wal_truncated_to {
            write!(f, "; log truncated to {len} bytes")?;
        }
        for c in &self.corruption {
            write!(f, "\n  corruption in {}: {}", c.file, c.corruption)?;
        }
        for i in &self.issues {
            write!(f, "\n  issue: {i}")?;
        }
        if self.breaker_open {
            write!(f, "\n  circuit breaker open: persistence suspended")?;
        }
        Ok(())
    }
}
