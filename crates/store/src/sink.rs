//! Bridges the durability layer's [`Storage`] seam to the tracing
//! layer's [`LineSink`], so a session can stream its JSONL trace into
//! the *same* store (directory, memory image, or chaos wrapper) that
//! holds its snapshot and WAL.
//!
//! The adapter lives here — not in `clogic-obs` — because obs must stay
//! dependency-free; it defines the [`LineSink`] trait and this crate
//! implements it.

use crate::storage::Storage;
use clogic_obs::LineSink;
use std::fmt;
use std::sync::Mutex;

/// Default file name for the JSONL trace inside a store.
pub const TRACE_FILE: &str = "trace.jsonl";

/// A [`LineSink`] appending each line (plus `\n`) to one file of a
/// [`Storage`].
///
/// [`LineSink::write_line`] takes `&self` while every [`Storage`] method
/// takes `&mut self`, so the storage sits behind a mutex. Trace lines are
/// appended but **not** fsynced — traces are diagnostics, not state the
/// recovery protocol depends on; a crash may lose the tail of the trace
/// but never corrupts the snapshot/WAL pair.
pub struct StorageSink {
    storage: Mutex<Box<dyn Storage>>,
    file: String,
}

impl StorageSink {
    /// A sink appending to [`TRACE_FILE`] in `storage`.
    pub fn new(storage: Box<dyn Storage>) -> StorageSink {
        StorageSink::with_file(storage, TRACE_FILE)
    }

    /// A sink appending to `file` in `storage`.
    pub fn with_file(storage: Box<dyn Storage>, file: impl Into<String>) -> StorageSink {
        StorageSink {
            storage: Mutex::new(storage),
            file: file.into(),
        }
    }
}

impl fmt::Debug for StorageSink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("StorageSink")
            .field("file", &self.file)
            .finish_non_exhaustive()
    }
}

impl LineSink for StorageSink {
    fn write_line(&self, line: &str) -> Result<(), String> {
        let mut storage = self
            .storage
            .lock()
            .map_err(|_| "storage sink poisoned".to_string())?;
        let mut bytes = Vec::with_capacity(line.len() + 1);
        bytes.extend_from_slice(line.as_bytes());
        bytes.push(b'\n');
        storage
            .append(&self.file, &bytes)
            .map_err(|e| e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chaos::{ChaosStorage, Fault};
    use crate::storage::MemStorage;
    use clogic_obs::{JsonlSubscriber, Obs};
    use std::sync::Arc;

    #[test]
    fn lines_land_in_storage() {
        let mem = MemStorage::new();
        let sink = StorageSink::new(Box::new(mem.clone()));
        sink.write_line("{\"a\":1}").unwrap();
        sink.write_line("{\"b\":2}").unwrap();
        let bytes = mem.clone().read(TRACE_FILE).unwrap().unwrap();
        assert_eq!(bytes, b"{\"a\":1}\n{\"b\":2}\n");
    }

    #[test]
    fn jsonl_subscriber_streams_spans_into_store() {
        let mem = MemStorage::new();
        let sub = JsonlSubscriber::new(Box::new(StorageSink::new(Box::new(mem.clone()))));
        let sub = Arc::new(sub);
        let obs = Obs::with_subscriber(sub.clone());
        {
            let span = obs.tracer.span("store.test");
            drop(span);
        }
        assert!(sub.written() >= 2, "span start + end");
        assert_eq!(sub.errors(), 0);
        let bytes = mem.clone().read(TRACE_FILE).unwrap().unwrap();
        let text = String::from_utf8(bytes).unwrap();
        assert!(text.contains("store.test"));
    }

    #[test]
    fn sink_errors_are_counted_not_propagated() {
        let mem = MemStorage::new();
        let chaos = ChaosStorage::new(mem.clone(), 1, Fault::Fail);
        let sub = Arc::new(JsonlSubscriber::new(Box::new(StorageSink::new(Box::new(
            chaos,
        )))));
        let obs = Obs::with_subscriber(sub.clone());
        // First event hits the injected fault; later ones go through.
        obs.tracer.event("e1", vec![]);
        obs.tracer.event("e2", vec![]);
        assert_eq!(sub.errors(), 1);
        assert_eq!(sub.written(), 1);
    }
}
