//! The durable log: one snapshot file plus one write-ahead log, managed
//! together over a [`Storage`].
//!
//! Protocol:
//!
//! * **Append** (per successful load): frame the record, append, sync.
//!   A crash mid-append leaves a torn tail that the next open detects by
//!   CRC and drops.
//! * **Compact** (`snapshot`): write the full state to `snapshot.tmp`,
//!   sync it, atomically rename over `snapshot.clg`, then reset the WAL
//!   to a bare header. A crash before the rename leaves the old snapshot
//!   intact; a crash after the rename but before the WAL reset leaves
//!   records whose epochs the snapshot already covers — recovery skips
//!   them as duplicates.
//! * **Open**: read and validate both files, truncate any torn WAL tail
//!   (so later appends are well-framed), report everything found.

use crate::report::{CorruptionSite, RecoveryReport};
use crate::storage::{Storage, StoreError};
use crate::wal::{
    decode_snapshot_file, encode_load, encode_snapshot_file, scan_wal, Corruption, LoadRecord,
    ScannedRecord, SnapshotRecord, WAL_MAGIC,
};
use clogic_obs::Obs;

/// File name of the write-ahead log inside a store.
pub const WAL_FILE: &str = "wal.log";
/// File name of the snapshot inside a store.
pub const SNAPSHOT_FILE: &str = "snapshot.clg";
/// Scratch name used during compaction.
pub const SNAPSHOT_TMP: &str = "snapshot.tmp";

/// A snapshot + WAL pair over some storage.
pub struct DurableLog {
    storage: Box<dyn Storage>,
    obs: Obs,
}

/// Everything [`DurableLog::open`] found on disk.
pub struct OpenedLog {
    /// The log, ready for appends and compaction.
    pub log: DurableLog,
    /// The snapshot, if one exists and is structurally valid.
    pub snapshot: Option<SnapshotRecord>,
    /// Structurally valid WAL records, in append order.
    pub records: Vec<ScannedRecord>,
    /// Framing-level findings (corruption sites, tail truncation);
    /// semantic replay fields are filled in by the caller.
    pub report: RecoveryReport,
}

impl DurableLog {
    /// Opens (or initializes) the store, validating both files, sealing a
    /// torn WAL tail, and clearing compaction scratch. Total over file
    /// *content* — corrupt bytes become report entries, never errors —
    /// but storage I/O failures are returned.
    pub fn open(storage: Box<dyn Storage>) -> Result<OpenedLog, StoreError> {
        DurableLog::open_with(storage, Obs::default())
    }

    /// [`DurableLog::open`] with an observability handle: torn-tail seals
    /// bump `store.recovery.torn_tail_seals`, and the returned log counts
    /// its appends, fsyncs, and compactions into `obs` for the rest of
    /// its life.
    pub fn open_with(mut storage: Box<dyn Storage>, obs: Obs) -> Result<OpenedLog, StoreError> {
        let mut report = RecoveryReport::default();

        // A structurally sound record of a newer format (version or kind
        // this build does not know) is NOT damage: it was durable to
        // whoever wrote it, and sealing or truncating it would silently
        // drop data. Refuse to open instead — a structured error, never
        // a panic, never a repair.
        let refuse = |corruption: &Corruption, file: &str| -> Option<StoreError> {
            if let Corruption::UnsupportedRecord { .. } = corruption {
                obs.metrics
                    .counter("store.recovery.unsupported_refusals")
                    .inc();
                Some(StoreError::new("open", file, corruption.to_string()))
            } else {
                None
            }
        };

        let snapshot = match storage.read(SNAPSHOT_FILE)? {
            None => None,
            Some(bytes) => match decode_snapshot_file(&bytes) {
                Ok(snap) => {
                    report.snapshot_epoch = Some(snap.epoch);
                    Some(snap)
                }
                Err(corruption) => {
                    if let Some(err) = refuse(&corruption, SNAPSHOT_FILE) {
                        return Err(err);
                    }
                    report.corruption.push(CorruptionSite {
                        file: SNAPSHOT_FILE.to_string(),
                        corruption,
                    });
                    None
                }
            },
        };

        let records = match storage.read(WAL_FILE)? {
            None => {
                storage.write(WAL_FILE, WAL_MAGIC)?;
                storage.sync(WAL_FILE)?;
                Vec::new()
            }
            Some(bytes) => {
                let scan = scan_wal(&bytes);
                if let Some(corruption) = scan.corruption {
                    if let Some(err) = refuse(&corruption, WAL_FILE) {
                        return Err(err);
                    }
                    obs.metrics.counter("store.recovery.torn_tail_seals").inc();
                    let bad_magic = corruption == Corruption::BadMagic;
                    report.corruption.push(CorruptionSite {
                        file: WAL_FILE.to_string(),
                        corruption,
                    });
                    // Seal: drop the unusable tail so future appends
                    // start at a clean frame boundary.
                    if bad_magic {
                        storage.write(WAL_FILE, WAL_MAGIC)?;
                        report.wal_truncated_to = Some(WAL_MAGIC.len() as u64);
                    } else {
                        storage.truncate(WAL_FILE, scan.valid_len)?;
                        report.wal_truncated_to = Some(scan.valid_len);
                    }
                    storage.sync(WAL_FILE)?;
                }
                scan.records
            }
        };

        // A leftover snapshot.tmp is an interrupted compaction that never
        // reached its rename; it holds nothing the snapshot + WAL don't.
        storage.remove(SNAPSHOT_TMP)?;

        report.breaker_open = storage.breaker_open();
        Ok(OpenedLog {
            log: DurableLog { storage, obs },
            snapshot,
            records,
            report,
        })
    }

    /// Initializes a **fresh** store, discarding any existing state:
    /// removes the snapshot and resets the WAL to a bare header. Used by
    /// save-as semantics, not by recovery.
    pub fn create(mut storage: Box<dyn Storage>) -> Result<DurableLog, StoreError> {
        storage.write(WAL_FILE, WAL_MAGIC)?;
        storage.sync(WAL_FILE)?;
        storage.remove(SNAPSHOT_FILE)?;
        storage.remove(SNAPSHOT_TMP)?;
        Ok(DurableLog {
            storage,
            obs: Obs::default(),
        })
    }

    /// Replaces the observability handle counting this log's appends,
    /// fsyncs, and compactions.
    pub fn set_obs(&mut self, obs: Obs) {
        self.obs = obs;
    }

    /// Whether the underlying storage's circuit breaker is open
    /// (persistence suspended). `false` for storages without a breaker.
    pub fn breaker_open(&self) -> bool {
        self.storage.breaker_open()
    }

    /// Appends one load record and syncs it to stable storage.
    pub fn append(&mut self, rec: &LoadRecord) -> Result<(), StoreError> {
        self.storage.append(WAL_FILE, &encode_load(rec))?;
        self.storage.sync(WAL_FILE)?;
        self.obs.metrics.counter("store.wal.appends").inc();
        self.obs.metrics.counter("store.wal.fsyncs").inc();
        Ok(())
    }

    /// Compacts the log into `snap`: tmp-write + fsync + atomic rename,
    /// then resets the WAL. Crash-safe at every step (see module docs).
    pub fn compact(&mut self, snap: &SnapshotRecord) -> Result<(), StoreError> {
        let bytes = encode_snapshot_file(snap);
        self.storage.write(SNAPSHOT_TMP, &bytes)?;
        self.storage.sync(SNAPSHOT_TMP)?;
        self.storage.rename(SNAPSHOT_TMP, SNAPSHOT_FILE)?;
        self.storage.write(WAL_FILE, WAL_MAGIC)?;
        self.storage.sync(WAL_FILE)?;
        self.obs.metrics.counter("store.compactions").inc();
        self.obs.metrics.counter("store.wal.fsyncs").add(2);
        Ok(())
    }

    /// Truncates the WAL to `len` bytes — used when replay finds a
    /// structurally valid but semantically unusable record and must drop
    /// it (plus everything after) so appended epochs stay consistent.
    pub fn truncate_wal(&mut self, len: u64) -> Result<(), StoreError> {
        self.storage.truncate(WAL_FILE, len)?;
        self.storage.sync(WAL_FILE)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::MemStorage;
    use crate::wal::WalOp;
    use clogic_core::skolem::SkolemState;

    fn rec(epoch: u64, source: &str) -> LoadRecord {
        LoadRecord {
            op: WalOp::Load,
            epoch,
            skolem: SkolemState {
                counter: 0,
                taken: Default::default(),
            },
            source: source.to_string(),
        }
    }

    #[test]
    fn append_then_open_replays() {
        let mem = MemStorage::new();
        let opened = DurableLog::open(Box::new(mem.clone())).unwrap();
        assert!(opened.records.is_empty());
        assert!(opened.report.corruption.is_empty());
        let mut log = opened.log;
        log.append(&rec(1, "t1: c1.")).unwrap();
        log.append(&rec(2, "t1: c2.")).unwrap();

        let reopened = DurableLog::open(Box::new(mem.clone())).unwrap();
        assert_eq!(reopened.records.len(), 2);
        assert_eq!(reopened.records[1].record.source, "t1: c2.");
        assert!(reopened.report.corruption.is_empty());
    }

    #[test]
    fn compact_resets_wal_and_survives_reopen() {
        let mem = MemStorage::new();
        let mut log = DurableLog::open(Box::new(mem.clone())).unwrap().log;
        log.append(&rec(1, "t1: c1.")).unwrap();
        log.compact(&SnapshotRecord {
            epoch: 1,
            skolem: SkolemState::default(),
            program: "t1: c1.\n".into(),
        })
        .unwrap();
        assert_eq!(mem.len(WAL_FILE), Some(WAL_MAGIC.len() as u64));

        let opened = DurableLog::open(Box::new(mem.clone())).unwrap();
        assert_eq!(opened.snapshot.unwrap().epoch, 1);
        assert!(opened.records.is_empty());
    }

    #[test]
    fn torn_tail_is_sealed_on_open() {
        let mem = MemStorage::new();
        let mut log = DurableLog::open(Box::new(mem.clone())).unwrap().log;
        log.append(&rec(1, "t1: c1.")).unwrap();
        let good_len = mem.len(WAL_FILE).unwrap();
        // Simulate a torn append.
        let mut raw = mem.clone();
        raw.append(WAL_FILE, &[1, 2, 3, 4, 5]).unwrap();

        let opened = DurableLog::open(Box::new(mem.clone())).unwrap();
        assert_eq!(opened.records.len(), 1);
        assert_eq!(opened.report.wal_truncated_to, Some(good_len));
        assert_eq!(mem.len(WAL_FILE), Some(good_len));
        // The sealed log accepts appends again.
        let mut log = opened.log;
        log.append(&rec(2, "t1: c2.")).unwrap();
        let reopened = DurableLog::open(Box::new(mem)).unwrap();
        assert_eq!(reopened.records.len(), 2);
        assert!(reopened.report.corruption.is_empty());
    }

    #[test]
    fn unsupported_record_refuses_open_without_sealing() {
        use crate::wal::put_u32;

        let mem = MemStorage::new();
        let mut log = DurableLog::open(Box::new(mem.clone())).unwrap().log;
        log.append(&rec(1, "t1: c1.")).unwrap();
        // Append a well-framed record claiming a future payload version.
        let mut payload = Vec::new();
        put_u32(&mut payload, 99);
        payload.extend_from_slice(b"future bytes");
        let framed = crate::wal::frame(&payload);
        let mut raw = mem.clone();
        raw.append(WAL_FILE, &framed).unwrap();
        let len_before = mem.len(WAL_FILE).unwrap();

        let err = match DurableLog::open(Box::new(mem.clone())) {
            Err(e) => e,
            Ok(_) => panic!("open must refuse an unsupported record"),
        };
        assert!(
            err.to_string().contains("unsupported"),
            "want structured refusal, got: {err}"
        );
        // Refusal must not repair: the file is byte-identical afterwards.
        assert_eq!(mem.len(WAL_FILE), Some(len_before));
    }

    #[test]
    fn create_discards_existing_state() {
        let mem = MemStorage::new();
        let mut log = DurableLog::open(Box::new(mem.clone())).unwrap().log;
        log.append(&rec(1, "t1: c1.")).unwrap();
        log.compact(&SnapshotRecord {
            epoch: 1,
            skolem: SkolemState::default(),
            program: "t1: c1.\n".into(),
        })
        .unwrap();
        let _ = DurableLog::create(Box::new(mem.clone())).unwrap();
        let opened = DurableLog::open(Box::new(mem)).unwrap();
        assert!(opened.snapshot.is_none());
        assert!(opened.records.is_empty());
    }
}
