//! CRC-32 (IEEE 802.3 polynomial, reflected), used to checksum every
//! record payload in the write-ahead log and snapshot files.
//!
//! The table is built at compile time; the algorithm is the standard
//! byte-at-a-time table lookup. This is the same checksum `zlib` and
//! `cksum -o 3` produce, so log files can be audited with external tools.

const POLY: u32 = 0xEDB8_8320;

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// The CRC-32 of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in data {
        crc = (crc >> 8) ^ TABLE[((crc ^ u32::from(b)) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value for the ASCII digits "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn detects_single_bit_flips() {
        let data = b"t1: c1[l1 => c2].";
        let base = crc32(data);
        for i in 0..data.len() {
            for bit in 0..8 {
                let mut flipped = data.to_vec();
                flipped[i] ^= 1 << bit;
                assert_ne!(crc32(&flipped), base, "flip at byte {i} bit {bit}");
            }
        }
    }
}
