//! # clogic-store — durability for C-logic sessions
//!
//! A session's durable form is a **snapshot + write-ahead log** pair in
//! one directory (or any [`Storage`] implementation):
//!
//! * every successful `load` appends one checksummed, length-prefixed
//!   [`LoadRecord`] (source text + epoch + skolem state) to `wal.log`;
//! * `snapshot()` compacts the log into `snapshot.clg` — the whole
//!   program in concrete syntax — via tmp-write + fsync + atomic rename.
//!
//! Recovery replays the snapshot and then the log through the session's
//! normal (epoch-versioned, incremental) load path, so recovered sessions
//! rebuild the same artifacts — and, critically, mint the **same skolem
//! identities** (`skN`), because each record carries the
//! [`SkolemState`](clogic_core::skolem::SkolemState) to verify against.
//! Torn or corrupt tails are detected by CRC, dropped, and reported in a
//! structured [`RecoveryReport`]; recovery never panics on any byte
//! content.
//!
//! The [`Storage`] trait is the fault-injection seam: [`ChaosStorage`]
//! fails, short-writes, duplicates, or tears exactly one operation, and
//! the recovery test suite sweeps that trigger across every I/O boundary
//! of the protocol.

#![warn(missing_docs)]

pub mod chaos;
pub mod crc;
pub mod log;
pub mod report;
pub mod retry;
pub mod sink;
pub mod storage;
pub mod wal;

pub use chaos::{ChaosStorage, Fault};
pub use crc::crc32;
pub use log::{DurableLog, OpenedLog, SNAPSHOT_FILE, SNAPSHOT_TMP, WAL_FILE};
pub use report::{CorruptionSite, RecoveryIssue, RecoveryReport};
pub use retry::{BreakerState, RetryPolicy, RetryingStorage, Sleeper};
pub use sink::{StorageSink, TRACE_FILE};
pub use storage::{FileStorage, MemStorage, Storage, StoreError};
pub use wal::{Corruption, LoadRecord, ScannedRecord, SnapshotRecord, WalOp};

// Compile-time thread-safety contracts: the serve layer shares these
// across a thread pool, so a regression must fail the build, not a test.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<FileStorage>();
    assert_send_sync::<MemStorage>();
    assert_send_sync::<ChaosStorage<MemStorage>>();
    assert_send_sync::<RetryingStorage<FileStorage>>();
    assert_send_sync::<StoreError>();
    assert_send_sync::<RecoveryReport>();
    assert_send_sync::<Box<dyn Storage>>();
};
