//! Record formats of the durability layer.
//!
//! Both files a durable session owns use the same framing:
//!
//! ```text
//! file     := magic record*          (wal: any number; snapshot: exactly 1)
//! magic    := 8 bytes ("CLGWAL01" / "CLGSNP01")
//! record   := len:u32le  crc:u32le  payload[len]
//! payload  := version:u32le  kind:u8  epoch:u64le  skolem:str  extra:str   (v2)
//!           | version:u32le  epoch:u64le  skolem:str  extra:str            (v1)
//! str      := len:u32le  utf8-bytes
//! ```
//!
//! `crc` is the CRC-32 ([`crate::crc`]) of the payload alone, so a record
//! is *self-validating*: a torn or bit-flipped tail is detected without
//! trusting anything after the last good record. For a WAL record `extra`
//! is the loaded (or retracted) source text; for a snapshot record it is
//! the rendered (already-skolemized) program. `skolem` is the
//! [`SkolemState`] text encoding.
//!
//! **Versioning.** Format v1 (pre-retraction logs) had no `kind` byte:
//! every record was a load. This build writes v2, whose `kind`
//! discriminates loads from retractions ([`WalOp`]); v1 payloads still
//! decode (as loads), so old logs replay unchanged. A payload with an
//! *unknown* version or kind — a log written by a newer build — is
//! surfaced as [`Corruption::UnsupportedRecord`], which recovery treats
//! as a refusal to open, **never** as a torn tail to seal or truncate:
//! silently dropping records a newer build considered durable would be
//! data loss.
//!
//! [`scan_wal`] is total: any byte string maps to a (possibly empty)
//! record prefix plus an optional [`Corruption`] describing why scanning
//! stopped — it never panics and never allocates more than the declared
//! payload length (bounded by [`MAX_RECORD_LEN`]).

use crate::crc::crc32;
use clogic_core::skolem::SkolemState;
use std::fmt;

/// Magic prefix of a write-ahead log file.
pub const WAL_MAGIC: &[u8; 8] = b"CLGWAL01";
/// Magic prefix of a snapshot file.
pub const SNAP_MAGIC: &[u8; 8] = b"CLGSNP01";
/// Payload format version written by this build. Version 1 (no record
/// kind byte; every record a load) is still read; see the module docs.
pub const FORMAT_VERSION: u32 = 2;
/// Upper bound on a single record payload; a declared length beyond this
/// is treated as corruption rather than honoured with an allocation.
pub const MAX_RECORD_LEN: u32 = 256 * 1024 * 1024;

/// What a WAL record did to the session: the `kind` byte of a v2
/// payload. v1 payloads (which predate retraction) decode as [`Load`].
///
/// [`Load`]: WalOp::Load
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum WalOp {
    /// Program text was loaded (asserted).
    #[default]
    Load,
    /// Clauses were retracted.
    Retract,
}

impl WalOp {
    fn kind_byte(self) -> u8 {
        match self {
            WalOp::Load => 1,
            WalOp::Retract => 2,
        }
    }

    fn from_kind_byte(b: u8) -> Option<WalOp> {
        match b {
            1 => Some(WalOp::Load),
            2 => Some(WalOp::Retract),
            _ => None,
        }
    }
}

impl fmt::Display for WalOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WalOp::Load => write!(f, "load"),
            WalOp::Retract => write!(f, "retract"),
        }
    }
}

/// One durably logged mutation — a `load` or a `retract`: the source
/// text plus the post-mutation epoch and skolem state, which recovery
/// uses to verify (and if needed pin) object-identity stability.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LoadRecord {
    /// What the record did ([`WalOp::Load`] for every v1 record).
    pub op: WalOp,
    /// Session epoch *after* this mutation was applied.
    pub epoch: u64,
    /// Skolem numbering state after this mutation.
    pub skolem: SkolemState,
    /// The loaded (or retracted) source text, verbatim.
    pub source: String,
}

/// A compacted session: the whole program (already skolemized, rendered
/// in concrete syntax) plus the epoch and skolem state it stood at.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SnapshotRecord {
    /// Session epoch at snapshot time.
    pub epoch: u64,
    /// Skolem numbering state at snapshot time.
    pub skolem: SkolemState,
    /// The full program in concrete syntax.
    pub program: String,
}

/// Why scanning a file stopped before its end.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Corruption {
    /// The file is shorter than the magic prefix or carries the wrong one.
    BadMagic,
    /// Fewer than 8 header bytes remain at `offset` — a torn header.
    TruncatedHeader {
        /// Byte offset of the incomplete header.
        offset: u64,
    },
    /// The declared payload length exceeds [`MAX_RECORD_LEN`].
    OversizedLength {
        /// Byte offset of the record header.
        offset: u64,
        /// The (implausible) declared length.
        len: u32,
    },
    /// The payload extends past the end of the file — a torn write.
    TruncatedPayload {
        /// Byte offset of the record header.
        offset: u64,
        /// Declared payload length.
        expected: u32,
        /// Bytes actually present.
        have: u64,
    },
    /// The payload's CRC does not match the header.
    ChecksumMismatch {
        /// Byte offset of the record header.
        offset: u64,
    },
    /// The CRC matched but the payload does not decode — an in-payload
    /// inconsistency.
    MalformedPayload {
        /// Byte offset of the record header.
        offset: u64,
        /// What failed to decode.
        detail: String,
    },
    /// A structurally valid record of an unknown format version or
    /// record kind — a log written by a newer build. Recovery refuses to
    /// open such a store rather than sealing or truncating it: the
    /// record was durable to whoever wrote it.
    UnsupportedRecord {
        /// Byte offset of the record header.
        offset: u64,
        /// The unrecognized version or kind.
        detail: String,
    },
}

impl fmt::Display for Corruption {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Corruption::BadMagic => write!(f, "missing or wrong magic prefix"),
            Corruption::TruncatedHeader { offset } => {
                write!(f, "torn record header at byte {offset}")
            }
            Corruption::OversizedLength { offset, len } => {
                write!(f, "implausible record length {len} at byte {offset}")
            }
            Corruption::TruncatedPayload {
                offset,
                expected,
                have,
            } => write!(
                f,
                "torn record payload at byte {offset} ({have} of {expected} bytes)"
            ),
            Corruption::ChecksumMismatch { offset } => {
                write!(f, "checksum mismatch at byte {offset}")
            }
            Corruption::MalformedPayload { offset, detail } => {
                write!(f, "malformed payload at byte {offset}: {detail}")
            }
            Corruption::UnsupportedRecord { offset, detail } => {
                write!(
                    f,
                    "unsupported record at byte {offset} ({detail}) — \
                     written by a newer format; refusing to guess"
                )
            }
        }
    }
}

// ---------- encoding ----------

pub(crate) fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn encode_payload(op: WalOp, epoch: u64, skolem: &SkolemState, extra: &str) -> Vec<u8> {
    let mut p = Vec::with_capacity(extra.len() + 64);
    put_u32(&mut p, FORMAT_VERSION);
    p.push(op.kind_byte());
    put_u64(&mut p, epoch);
    put_str(&mut p, &skolem.encode());
    put_str(&mut p, extra);
    p
}

/// Frames a payload as `[len][crc][payload]`.
pub(crate) fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + 8);
    put_u32(&mut out, payload.len() as u32);
    put_u32(&mut out, crc32(payload));
    out.extend_from_slice(payload);
    out
}

/// A WAL record, framed and ready to append.
pub fn encode_load(rec: &LoadRecord) -> Vec<u8> {
    frame(&encode_payload(rec.op, rec.epoch, &rec.skolem, &rec.source))
}

/// A complete snapshot file: magic plus one framed record.
pub fn encode_snapshot_file(rec: &SnapshotRecord) -> Vec<u8> {
    let payload = encode_payload(WalOp::Load, rec.epoch, &rec.skolem, &rec.program);
    let mut out = Vec::with_capacity(payload.len() + 16);
    out.extend_from_slice(SNAP_MAGIC);
    out.extend_from_slice(&frame(&payload));
    out
}

// ---------- decoding ----------

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn u32(&mut self) -> Option<u32> {
        let b = self.bytes.get(self.pos..self.pos + 4)?;
        self.pos += 4;
        Some(u32::from_le_bytes(b.try_into().expect("4-byte slice")))
    }

    fn u64(&mut self) -> Option<u64> {
        let b = self.bytes.get(self.pos..self.pos + 8)?;
        self.pos += 8;
        Some(u64::from_le_bytes(b.try_into().expect("8-byte slice")))
    }

    fn str(&mut self) -> Option<&'a str> {
        let len = self.u32()? as usize;
        let b = self.bytes.get(self.pos..self.pos.checked_add(len)?)?;
        self.pos += len;
        std::str::from_utf8(b).ok()
    }
}

/// Why a checksum-valid payload did not decode: `Malformed` is damage
/// or drift *within* a known format; `Unsupported` is a coherent record
/// of a format this build does not know (newer version or kind), which
/// recovery must refuse rather than repair.
enum PayloadError {
    Malformed(String),
    Unsupported(String),
}

/// Decodes one validated payload into `(op, epoch, skolem, extra)`.
/// Accepts format v1 (no kind byte; decodes as a load) and v2.
fn decode_payload(payload: &[u8]) -> Result<(WalOp, u64, SkolemState, String), PayloadError> {
    use PayloadError::{Malformed, Unsupported};
    let mut r = Reader {
        bytes: payload,
        pos: 0,
    };
    let version = r.u32().ok_or(Malformed("missing version".into()))?;
    let op = match version {
        1 => WalOp::Load,
        2 => {
            let kind = *payload
                .get(r.pos)
                .ok_or(Malformed("missing record kind".into()))?;
            r.pos += 1;
            WalOp::from_kind_byte(kind)
                .ok_or_else(|| Unsupported(format!("record kind {kind}")))?
        }
        v => return Err(Unsupported(format!("payload version {v}"))),
    };
    let epoch = r.u64().ok_or(Malformed("missing epoch".into()))?;
    let skolem_text = r.str().ok_or(Malformed("missing skolem state".into()))?;
    let skolem =
        SkolemState::decode(skolem_text).ok_or(Malformed("undecodable skolem state".into()))?;
    let extra = r
        .str()
        .ok_or(Malformed("missing body".into()))?
        .to_string();
    if r.pos != payload.len() {
        return Err(Malformed(format!(
            "{} trailing bytes after payload",
            payload.len() - r.pos
        )));
    }
    Ok((op, epoch, skolem, extra))
}

/// A record recovered from a WAL scan, with the byte offset of its header
/// (so semantic replay failures can truncate the log *at* the record).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ScannedRecord {
    /// Byte offset of the record's `[len]` header within the file.
    pub offset: u64,
    /// The decoded record.
    pub record: LoadRecord,
}

/// The result of scanning a WAL image.
#[derive(Clone, Debug, Default)]
pub struct WalScan {
    /// Every fully valid record, in file order.
    pub records: Vec<ScannedRecord>,
    /// Length of the valid prefix: magic plus all valid records. A file
    /// truncated to this length is a well-formed WAL.
    pub valid_len: u64,
    /// Why scanning stopped early, if it did.
    pub corruption: Option<Corruption>,
}

/// Scans a WAL image, returning every valid record and the reason the
/// scan stopped (if the tail is torn or corrupt). Total: never panics.
pub fn scan_wal(bytes: &[u8]) -> WalScan {
    let mut scan = WalScan::default();
    if bytes.len() < WAL_MAGIC.len() || &bytes[..WAL_MAGIC.len()] != WAL_MAGIC {
        scan.corruption = Some(Corruption::BadMagic);
        return scan;
    }
    let mut pos = WAL_MAGIC.len();
    scan.valid_len = pos as u64;
    while pos < bytes.len() {
        let offset = pos as u64;
        if bytes.len() - pos < 8 {
            scan.corruption = Some(Corruption::TruncatedHeader { offset });
            return scan;
        }
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4 bytes"));
        let crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().expect("4 bytes"));
        if len > MAX_RECORD_LEN {
            scan.corruption = Some(Corruption::OversizedLength { offset, len });
            return scan;
        }
        let body_start = pos + 8;
        let body_end = body_start + len as usize;
        if body_end > bytes.len() {
            scan.corruption = Some(Corruption::TruncatedPayload {
                offset,
                expected: len,
                have: (bytes.len() - body_start) as u64,
            });
            return scan;
        }
        let payload = &bytes[body_start..body_end];
        if crc32(payload) != crc {
            scan.corruption = Some(Corruption::ChecksumMismatch { offset });
            return scan;
        }
        match decode_payload(payload) {
            Ok((op, epoch, skolem, source)) => {
                scan.records.push(ScannedRecord {
                    offset,
                    record: LoadRecord {
                        op,
                        epoch,
                        skolem,
                        source,
                    },
                });
                pos = body_end;
                scan.valid_len = pos as u64;
            }
            Err(PayloadError::Malformed(detail)) => {
                scan.corruption = Some(Corruption::MalformedPayload { offset, detail });
                return scan;
            }
            Err(PayloadError::Unsupported(detail)) => {
                scan.corruption = Some(Corruption::UnsupportedRecord { offset, detail });
                return scan;
            }
        }
    }
    scan
}

/// Decodes a snapshot file image. Total: never panics.
pub fn decode_snapshot_file(bytes: &[u8]) -> Result<SnapshotRecord, Corruption> {
    if bytes.len() < SNAP_MAGIC.len() || &bytes[..SNAP_MAGIC.len()] != SNAP_MAGIC {
        return Err(Corruption::BadMagic);
    }
    let rest = &bytes[SNAP_MAGIC.len()..];
    let offset = SNAP_MAGIC.len() as u64;
    if rest.len() < 8 {
        return Err(Corruption::TruncatedHeader { offset });
    }
    let len = u32::from_le_bytes(rest[..4].try_into().expect("4 bytes"));
    let crc = u32::from_le_bytes(rest[4..8].try_into().expect("4 bytes"));
    if len > MAX_RECORD_LEN {
        return Err(Corruption::OversizedLength { offset, len });
    }
    let body = rest
        .get(8..8 + len as usize)
        .ok_or(Corruption::TruncatedPayload {
            offset,
            expected: len,
            have: (rest.len() - 8) as u64,
        })?;
    if crc32(body) != crc {
        return Err(Corruption::ChecksumMismatch { offset });
    }
    let (_, epoch, skolem, program) = decode_payload(body).map_err(|e| match e {
        PayloadError::Malformed(detail) => Corruption::MalformedPayload { offset, detail },
        PayloadError::Unsupported(detail) => Corruption::UnsupportedRecord { offset, detail },
    })?;
    Ok(SnapshotRecord {
        epoch,
        skolem,
        program,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use clogic_core::symbol::sym;
    use std::collections::BTreeSet;

    fn rec(epoch: u64, source: &str) -> LoadRecord {
        LoadRecord {
            op: WalOp::Load,
            epoch,
            skolem: SkolemState {
                counter: epoch as usize,
                taken: BTreeSet::from([sym("sk1"), sym("f")]),
            },
            source: source.to_string(),
        }
    }

    fn wal_image(records: &[LoadRecord]) -> Vec<u8> {
        let mut bytes = WAL_MAGIC.to_vec();
        for r in records {
            bytes.extend_from_slice(&encode_load(r));
        }
        bytes
    }

    #[test]
    fn roundtrip_records() {
        let records = vec![rec(1, "t1: c1."), rec(2, "p(X) :- t1: X.")];
        let bytes = wal_image(&records);
        let scan = scan_wal(&bytes);
        assert!(scan.corruption.is_none());
        assert_eq!(scan.valid_len, bytes.len() as u64);
        let got: Vec<LoadRecord> = scan.records.into_iter().map(|s| s.record).collect();
        assert_eq!(got, records);
    }

    #[test]
    fn torn_tail_keeps_valid_prefix() {
        let records = vec![rec(1, "t1: c1."), rec(2, "t2: c2.")];
        let full = wal_image(&records);
        let first_end = wal_image(&records[..1]).len();
        // Cut anywhere strictly inside the second record.
        for cut in first_end + 1..full.len() {
            let scan = scan_wal(&full[..cut]);
            assert_eq!(scan.records.len(), 1, "cut at {cut}");
            assert_eq!(scan.valid_len, first_end as u64, "cut at {cut}");
            assert!(scan.corruption.is_some(), "cut at {cut}");
        }
    }

    #[test]
    fn bit_flips_are_caught() {
        let full = wal_image(&[rec(1, "t1: c1.")]);
        // Flip a payload byte: checksum mismatch. (Flipping length/crc
        // header bytes yields Truncated/Oversized/Checksum variants.)
        for i in WAL_MAGIC.len()..full.len() {
            let mut bad = full.clone();
            bad[i] ^= 0x40;
            let scan = scan_wal(&bad);
            assert!(
                scan.corruption.is_some() || scan.records[0].record != rec(1, "t1: c1."),
                "undetected flip at byte {i}"
            );
        }
    }

    #[test]
    fn bad_magic_is_reported() {
        let scan = scan_wal(b"NOTAWAL!rest");
        assert_eq!(scan.corruption, Some(Corruption::BadMagic));
        assert_eq!(scan.valid_len, 0);
        assert!(scan.records.is_empty());
    }

    #[test]
    fn oversized_length_is_not_allocated() {
        let mut bytes = WAL_MAGIC.to_vec();
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes());
        let scan = scan_wal(&bytes);
        assert!(matches!(
            scan.corruption,
            Some(Corruption::OversizedLength { .. })
        ));
    }

    #[test]
    fn snapshot_roundtrip_and_corruption() {
        let snap = SnapshotRecord {
            epoch: 7,
            skolem: SkolemState {
                counter: 3,
                taken: BTreeSet::from([sym("sk3")]),
            },
            program: "t1: c1.\n".to_string(),
        };
        let bytes = encode_snapshot_file(&snap);
        assert_eq!(decode_snapshot_file(&bytes).unwrap(), snap);
        for cut in 0..bytes.len() {
            assert!(decode_snapshot_file(&bytes[..cut]).is_err(), "cut {cut}");
        }
        let mut flipped = bytes.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 1;
        assert!(decode_snapshot_file(&flipped).is_err());
    }

    #[test]
    fn retract_records_roundtrip() {
        let mut retract = rec(3, "t1: c1.");
        retract.op = WalOp::Retract;
        let records = vec![rec(1, "t1: c1."), retract.clone(), rec(4, "t2: c2.")];
        let bytes = wal_image(&records);
        let scan = scan_wal(&bytes);
        assert!(scan.corruption.is_none());
        let got: Vec<LoadRecord> = scan.records.into_iter().map(|s| s.record).collect();
        assert_eq!(got, records);
        assert_eq!(got[1].op, WalOp::Retract);
    }

    /// Hand-encodes a v1 payload (no kind byte) for the given record.
    fn encode_v1(r: &LoadRecord) -> Vec<u8> {
        let mut p = Vec::new();
        put_u32(&mut p, 1);
        put_u64(&mut p, r.epoch);
        put_str(&mut p, &r.skolem.encode());
        put_str(&mut p, &r.source);
        frame(&p)
    }

    #[test]
    fn v1_records_still_decode_as_loads() {
        let records = vec![rec(1, "t1: c1."), rec(2, "p(X) :- t1: X.")];
        let mut bytes = WAL_MAGIC.to_vec();
        for r in &records {
            bytes.extend_from_slice(&encode_v1(r));
        }
        let scan = scan_wal(&bytes);
        assert!(scan.corruption.is_none(), "{:?}", scan.corruption);
        let got: Vec<LoadRecord> = scan.records.into_iter().map(|s| s.record).collect();
        assert_eq!(got, records);
        assert!(got.iter().all(|r| r.op == WalOp::Load));
    }

    #[test]
    fn mixed_v1_and_v2_records_interleave() {
        let r1 = rec(1, "t1: c1.");
        let mut r2 = rec(2, "t1: c1.");
        r2.op = WalOp::Retract;
        let mut bytes = WAL_MAGIC.to_vec();
        bytes.extend_from_slice(&encode_v1(&r1));
        bytes.extend_from_slice(&encode_load(&r2));
        let scan = scan_wal(&bytes);
        assert!(scan.corruption.is_none());
        assert_eq!(scan.records[0].record, r1);
        assert_eq!(scan.records[1].record, r2);
    }

    #[test]
    fn unknown_version_and_kind_are_unsupported_not_malformed() {
        // A future version: keep the record structurally sound.
        let mut p = Vec::new();
        put_u32(&mut p, 3);
        put_u64(&mut p, 9);
        put_str(&mut p, "c0;");
        put_str(&mut p, "whatever");
        let mut bytes = wal_image(&[rec(1, "t1: c1.")]);
        bytes.extend_from_slice(&frame(&p));
        let scan = scan_wal(&bytes);
        assert_eq!(scan.records.len(), 1, "valid prefix still scans");
        match scan.corruption {
            Some(Corruption::UnsupportedRecord { ref detail, .. }) => {
                assert!(detail.contains("version 3"), "{detail}");
            }
            other => panic!("expected UnsupportedRecord, got {other:?}"),
        }
        // An unknown kind byte under the current version.
        let mut p = Vec::new();
        put_u32(&mut p, FORMAT_VERSION);
        p.push(77);
        put_u64(&mut p, 9);
        put_str(&mut p, "c0;");
        put_str(&mut p, "whatever");
        let mut bytes = WAL_MAGIC.to_vec();
        bytes.extend_from_slice(&frame(&p));
        let scan = scan_wal(&bytes);
        assert!(matches!(
            scan.corruption,
            Some(Corruption::UnsupportedRecord { .. })
        ));
    }

    #[test]
    fn scan_is_total_on_garbage() {
        // Deterministic pseudo-random garbage of many lengths.
        let mut x: u64 = 0x1234_5678_9abc_def0;
        for len in 0..200 {
            let bytes: Vec<u8> = (0..len)
                .map(|_| {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                    (x >> 33) as u8
                })
                .collect();
            let _ = scan_wal(&bytes);
            let _ = decode_snapshot_file(&bytes);
            // Also with a valid magic in front.
            let mut with_magic = WAL_MAGIC.to_vec();
            with_magic.extend_from_slice(&bytes);
            let _ = scan_wal(&with_magic);
        }
    }
}
