//! The I/O seam of the durability layer.
//!
//! Everything the [`DurableLog`](crate::log::DurableLog) does to disk goes
//! through the [`Storage`] trait, so tests can substitute an in-memory
//! implementation ([`MemStorage`]) and the fault-injection harness can
//! wrap either one in a [`ChaosStorage`](crate::chaos::ChaosStorage) that
//! fails, short-writes, or duplicates at a chosen operation.

use std::collections::HashMap;
use std::fmt;
use std::fs::{self, OpenOptions};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// A failed storage operation, with enough context to tell *which* I/O
/// step on *which* file went wrong.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StoreError {
    /// The operation that failed (`read`, `append`, `sync`, …).
    pub op: &'static str,
    /// The file the operation targeted.
    pub file: String,
    /// The underlying failure, rendered.
    pub message: String,
    /// Whether retrying the same operation could plausibly succeed (a
    /// disk hiccup, an interrupted syscall) as opposed to a structural
    /// failure that will recur (missing file, permission denied). Drives
    /// [`RetryingStorage`](crate::retry::RetryingStorage)'s retry/give-up
    /// decision.
    pub transient: bool,
}

impl StoreError {
    /// Builds a **permanent** error for a failed `op` on `file`.
    pub fn new(op: &'static str, file: &str, message: impl ToString) -> StoreError {
        StoreError {
            op,
            file: file.to_string(),
            message: message.to_string(),
            transient: false,
        }
    }

    /// Builds a **transient** error for a failed `op` on `file` — one a
    /// bounded retry is allowed to absorb.
    pub fn transient(op: &'static str, file: &str, message: impl ToString) -> StoreError {
        StoreError {
            transient: true,
            ..StoreError::new(op, file, message)
        }
    }

    /// Builds an error from an [`std::io::Error`], classifying the kind:
    /// interruptions, timeouts, and would-block conditions are transient;
    /// everything else (not found, permissions, disk full) is permanent.
    pub fn from_io(op: &'static str, file: &str, e: &std::io::Error) -> StoreError {
        use std::io::ErrorKind;
        let transient = matches!(
            e.kind(),
            ErrorKind::Interrupted | ErrorKind::TimedOut | ErrorKind::WouldBlock
        );
        StoreError {
            op,
            file: file.to_string(),
            message: e.to_string(),
            transient,
        }
    }

    /// Whether retrying the operation could plausibly succeed.
    pub fn is_transient(&self) -> bool {
        self.transient
    }
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "storage {} on `{}`: {}", self.op, self.file, self.message)
    }
}

impl std::error::Error for StoreError {}

/// Flat-namespace file operations, relative to one store root.
///
/// Implementations must make `append` + `sync` durable in order: once
/// `sync(file)` returns, every byte appended before it survives a crash.
/// `rename` must be atomic with respect to crashes (the destination is
/// either the old or the new file, never a mix) — this is what makes
/// snapshot compaction safe.
///
/// The `Send + Sync` bound is what lets a persistent `Session` sit
/// behind a reader/writer lock and be driven from a thread pool (the
/// `clogic-serve` crate); every method takes `&mut self`, so `Sync` costs
/// implementations nothing.
pub trait Storage: Send + Sync {
    /// The full content of `file`, or `None` if it does not exist.
    fn read(&mut self, file: &str) -> Result<Option<Vec<u8>>, StoreError>;
    /// Creates or replaces `file` with `data`.
    fn write(&mut self, file: &str, data: &[u8]) -> Result<(), StoreError>;
    /// Appends `data` to `file`, creating it if absent.
    fn append(&mut self, file: &str, data: &[u8]) -> Result<(), StoreError>;
    /// Truncates `file` to `len` bytes.
    fn truncate(&mut self, file: &str, len: u64) -> Result<(), StoreError>;
    /// Flushes `file`'s data to stable storage.
    fn sync(&mut self, file: &str) -> Result<(), StoreError>;
    /// Atomically renames `from` to `to`, replacing `to` if it exists.
    fn rename(&mut self, from: &str, to: &str) -> Result<(), StoreError>;
    /// Removes `file`; succeeds if it does not exist.
    fn remove(&mut self, file: &str) -> Result<(), StoreError>;
    /// The current size of `file` in bytes, or `None` if it does not
    /// exist — a metadata probe, not a data operation. The default reads
    /// the whole file; implementations override it with something
    /// cheaper. [`RetryingStorage`](crate::retry::RetryingStorage) uses
    /// this to detect (and roll back) torn `append` attempts before
    /// retrying them.
    fn len(&mut self, file: &str) -> Result<Option<u64>, StoreError> {
        Ok(self.read(file)?.map(|b| b.len() as u64))
    }
    /// Whether a circuit breaker wrapped around this storage is currently
    /// open (persistence suspended; operations fail fast). Plain storages
    /// have no breaker and report `false`; the
    /// [`RetryingStorage`](crate::retry::RetryingStorage) wrapper
    /// overrides this so health surfaces through `Box<dyn Storage>` seams
    /// ([`RecoveryReport`](crate::report::RecoveryReport), serve-layer
    /// status) without downcasting.
    fn breaker_open(&self) -> bool {
        false
    }
}

/// Forwarding impl so a `Box<dyn Storage>` is itself a [`Storage`]:
/// the multi-tenant serving layer builds per-tenant storage through a
/// factory returning boxed trait objects and then stacks
/// [`RetryingStorage`](crate::retry::RetryingStorage) (which is generic
/// over `S: Storage`) on top of them.
impl Storage for Box<dyn Storage> {
    fn read(&mut self, file: &str) -> Result<Option<Vec<u8>>, StoreError> {
        (**self).read(file)
    }

    fn write(&mut self, file: &str, data: &[u8]) -> Result<(), StoreError> {
        (**self).write(file, data)
    }

    fn append(&mut self, file: &str, data: &[u8]) -> Result<(), StoreError> {
        (**self).append(file, data)
    }

    fn truncate(&mut self, file: &str, len: u64) -> Result<(), StoreError> {
        (**self).truncate(file, len)
    }

    fn sync(&mut self, file: &str) -> Result<(), StoreError> {
        (**self).sync(file)
    }

    fn rename(&mut self, from: &str, to: &str) -> Result<(), StoreError> {
        (**self).rename(from, to)
    }

    fn remove(&mut self, file: &str) -> Result<(), StoreError> {
        (**self).remove(file)
    }

    fn len(&mut self, file: &str) -> Result<Option<u64>, StoreError> {
        (**self).len(file)
    }

    fn breaker_open(&self) -> bool {
        (**self).breaker_open()
    }
}

/// Real files under a root directory.
pub struct FileStorage {
    root: PathBuf,
}

impl FileStorage {
    /// Opens `root` as a store, creating the directory if needed.
    pub fn create(root: impl AsRef<Path>) -> Result<FileStorage, StoreError> {
        let root = root.as_ref().to_path_buf();
        fs::create_dir_all(&root)
            .map_err(|e| StoreError::new("create-dir", &root.display().to_string(), e))?;
        Ok(FileStorage { root })
    }

    fn path(&self, file: &str) -> PathBuf {
        self.root.join(file)
    }

    /// Flushes the directory entry itself, so a completed rename survives
    /// a crash. Best-effort on platforms where directories cannot be
    /// opened as files.
    fn sync_dir(&self) {
        #[cfg(unix)]
        if let Ok(d) = fs::File::open(&self.root) {
            let _ = d.sync_all();
        }
    }
}

impl Storage for FileStorage {
    fn read(&mut self, file: &str) -> Result<Option<Vec<u8>>, StoreError> {
        match fs::read(self.path(file)) {
            Ok(bytes) => Ok(Some(bytes)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(StoreError::from_io("read", file, &e)),
        }
    }

    fn write(&mut self, file: &str, data: &[u8]) -> Result<(), StoreError> {
        fs::write(self.path(file), data).map_err(|e| StoreError::from_io("write", file, &e))
    }

    fn append(&mut self, file: &str, data: &[u8]) -> Result<(), StoreError> {
        let mut f = OpenOptions::new()
            .append(true)
            .create(true)
            .open(self.path(file))
            .map_err(|e| StoreError::from_io("append", file, &e))?;
        f.write_all(data)
            .map_err(|e| StoreError::from_io("append", file, &e))
    }

    fn truncate(&mut self, file: &str, len: u64) -> Result<(), StoreError> {
        let f = OpenOptions::new()
            .write(true)
            .open(self.path(file))
            .map_err(|e| StoreError::from_io("truncate", file, &e))?;
        f.set_len(len)
            .map_err(|e| StoreError::from_io("truncate", file, &e))
    }

    fn sync(&mut self, file: &str) -> Result<(), StoreError> {
        let f =
            fs::File::open(self.path(file)).map_err(|e| StoreError::from_io("sync", file, &e))?;
        f.sync_all()
            .map_err(|e| StoreError::from_io("sync", file, &e))
    }

    fn rename(&mut self, from: &str, to: &str) -> Result<(), StoreError> {
        fs::rename(self.path(from), self.path(to))
            .map_err(|e| StoreError::from_io("rename", from, &e))?;
        self.sync_dir();
        Ok(())
    }

    fn remove(&mut self, file: &str) -> Result<(), StoreError> {
        match fs::remove_file(self.path(file)) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(StoreError::from_io("remove", file, &e)),
        }
    }

    fn len(&mut self, file: &str) -> Result<Option<u64>, StoreError> {
        match fs::metadata(self.path(file)) {
            Ok(meta) => Ok(Some(meta.len())),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(StoreError::from_io("len", file, &e)),
        }
    }
}

/// An in-memory store, shared between clones — reopening a clone of a
/// `MemStorage` after a simulated crash sees exactly the bytes the
/// crashed instance managed to write. `sync` is a no-op: every completed
/// write is considered durable, which is the *pessimistic* model for
/// recovery testing (torn writes are injected explicitly by the chaos
/// layer, not by dropping unsynced suffixes).
#[derive(Clone, Default)]
pub struct MemStorage {
    files: Arc<Mutex<HashMap<String, Vec<u8>>>>,
}

impl MemStorage {
    /// An empty in-memory store.
    pub fn new() -> MemStorage {
        MemStorage::default()
    }

    /// The current size of `file`, for test assertions.
    pub fn len(&self, file: &str) -> Option<u64> {
        self.files
            .lock()
            .expect("mem storage lock")
            .get(file)
            .map(|v| v.len() as u64)
    }

    /// True when the store holds no files.
    pub fn is_empty(&self) -> bool {
        self.files.lock().expect("mem storage lock").is_empty()
    }
}

impl Storage for MemStorage {
    fn read(&mut self, file: &str) -> Result<Option<Vec<u8>>, StoreError> {
        Ok(self
            .files
            .lock()
            .expect("mem storage lock")
            .get(file)
            .cloned())
    }

    fn write(&mut self, file: &str, data: &[u8]) -> Result<(), StoreError> {
        self.files
            .lock()
            .expect("mem storage lock")
            .insert(file.to_string(), data.to_vec());
        Ok(())
    }

    fn append(&mut self, file: &str, data: &[u8]) -> Result<(), StoreError> {
        self.files
            .lock()
            .expect("mem storage lock")
            .entry(file.to_string())
            .or_default()
            .extend_from_slice(data);
        Ok(())
    }

    fn truncate(&mut self, file: &str, len: u64) -> Result<(), StoreError> {
        match self
            .files
            .lock()
            .expect("mem storage lock")
            .get_mut(file)
        {
            Some(v) => {
                v.truncate(len as usize);
                Ok(())
            }
            None => Err(StoreError::new("truncate", file, "no such file")),
        }
    }

    fn sync(&mut self, _file: &str) -> Result<(), StoreError> {
        Ok(())
    }

    fn rename(&mut self, from: &str, to: &str) -> Result<(), StoreError> {
        let mut files = self.files.lock().expect("mem storage lock");
        match files.remove(from) {
            Some(v) => {
                files.insert(to.to_string(), v);
                Ok(())
            }
            None => Err(StoreError::new("rename", from, "no such file")),
        }
    }

    fn remove(&mut self, file: &str) -> Result<(), StoreError> {
        self.files.lock().expect("mem storage lock").remove(file);
        Ok(())
    }

    fn len(&mut self, file: &str) -> Result<Option<u64>, StoreError> {
        Ok(MemStorage::len(self, file))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise(mut s: impl Storage) {
        assert_eq!(s.read("a").unwrap(), None);
        s.write("a", b"hello").unwrap();
        s.append("a", b" world").unwrap();
        s.sync("a").unwrap();
        assert_eq!(s.read("a").unwrap().unwrap(), b"hello world");
        s.truncate("a", 5).unwrap();
        assert_eq!(s.read("a").unwrap().unwrap(), b"hello");
        s.rename("a", "b").unwrap();
        assert_eq!(s.read("a").unwrap(), None);
        assert_eq!(s.read("b").unwrap().unwrap(), b"hello");
        s.remove("b").unwrap();
        s.remove("b").unwrap(); // idempotent
        assert_eq!(s.read("b").unwrap(), None);
        // Appending to an absent file creates it.
        s.append("c", b"x").unwrap();
        assert_eq!(s.read("c").unwrap().unwrap(), b"x");
        s.remove("c").unwrap();
    }

    #[test]
    fn mem_storage_contract() {
        exercise(MemStorage::new());
    }

    #[test]
    fn file_storage_contract() {
        let dir = std::env::temp_dir().join(format!(
            "clogic-store-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        exercise(FileStorage::create(&dir).unwrap());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn mem_storage_clones_share_state() {
        let a = MemStorage::new();
        let mut b = a.clone();
        b.write("f", b"shared").unwrap();
        assert_eq!(a.clone().read("f").unwrap().unwrap(), b"shared");
        assert_eq!(a.len("f"), Some(6));
    }
}
