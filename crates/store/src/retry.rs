//! Retrying storage with a circuit breaker — the absorption layer
//! between a serving session and a flaky disk.
//!
//! [`RetryingStorage`] wraps any [`Storage`] and gives every operation
//! two defenses:
//!
//! * **bounded retry with exponential backoff** for *transient* failures
//!   ([`StoreError::is_transient`]): the operation is re-attempted up to
//!   [`RetryPolicy::max_retries`] times, sleeping `base_backoff · 2ⁿ`
//!   (capped at `max_backoff`) between attempts. The backoff schedule is
//!   deterministic and the sleeper is injectable, so tests assert the
//!   exact sleep sequence without waiting for it.
//! * **a circuit breaker** for failures retry cannot absorb: after
//!   [`RetryPolicy::breaker_threshold`] *consecutive* operations that
//!   ultimately failed (a permanent error, or a transient one that
//!   outlived its retries), the breaker **opens** and every subsequent
//!   operation fails fast — no I/O, no backoff sleeps — so a session can
//!   keep answering queries read-only instead of stalling each load on a
//!   full retry storm against a dead disk. After
//!   [`RetryPolicy::probe_after`] fail-fast rejections the breaker goes
//!   **half-open**: the next operation is attempted for real; success
//!   closes the breaker, failure re-opens it.
//!
//! Retrying an `append` whose first attempt actually landed produces a
//! duplicate WAL record — exactly the case [`Fault::DuplicateAppend`]
//! (see [`ChaosStorage`](crate::chaos::ChaosStorage)) injects, and one
//! recovery already tolerates: duplicate epochs are skipped during
//! replay. That pre-existing tolerance is what makes blind retry safe at
//! this seam.
//!
//! [`Fault::DuplicateAppend`]: crate::chaos::Fault::DuplicateAppend

use crate::storage::{Storage, StoreError};
use clogic_obs::Obs;
use std::sync::Arc;
use std::time::Duration;

/// Retry and breaker tuning for a [`RetryingStorage`].
#[derive(Clone, Debug)]
pub struct RetryPolicy {
    /// Re-attempts allowed per operation beyond the first try.
    pub max_retries: u32,
    /// Backoff before the first retry; doubles per further retry.
    pub base_backoff: Duration,
    /// Ceiling on any single backoff sleep.
    pub max_backoff: Duration,
    /// Consecutive ultimately-failed operations that open the breaker.
    pub breaker_threshold: u32,
    /// Fail-fast rejections while open before a half-open probe is
    /// allowed through. Counted in operations, not wall time, so breaker
    /// recovery is deterministic under test.
    pub probe_after: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 3,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(100),
            breaker_threshold: 3,
            probe_after: 8,
        }
    }
}

impl RetryPolicy {
    /// The deterministic backoff before retry number `n` (0-based):
    /// `base_backoff · 2ⁿ`, capped at `max_backoff`.
    pub fn backoff(&self, retry: u32) -> Duration {
        let exp = self
            .base_backoff
            .saturating_mul(1u32.checked_shl(retry).unwrap_or(u32::MAX));
        exp.min(self.max_backoff)
    }
}

/// Where the circuit breaker stands.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BreakerState {
    /// Operations flow through (with retry protection).
    Closed,
    /// Persistence is suspended; operations fail fast without I/O.
    Open,
    /// The next operation is a probe: success closes the breaker,
    /// failure re-opens it.
    HalfOpen,
}

impl std::fmt::Display for BreakerState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half-open",
        })
    }
}

/// The sleep function a [`RetryingStorage`] backs off with. The default
/// is [`std::thread::sleep`]; tests inject a recorder so the backoff
/// schedule is asserted, not waited for.
pub type Sleeper = Arc<dyn Fn(Duration) + Send + Sync>;

/// A [`Storage`] wrapper adding bounded retry with exponential backoff
/// and a circuit breaker. See the [module docs](self) for the protocol.
pub struct RetryingStorage<S> {
    inner: S,
    policy: RetryPolicy,
    sleeper: Sleeper,
    obs: Obs,
    state: BreakerState,
    /// Consecutive operations that ultimately failed (resets on success).
    consecutive_failures: u32,
    /// Fail-fast rejections since the breaker opened.
    rejections: u32,
}

impl<S: Storage> RetryingStorage<S> {
    /// Wraps `inner` with the default [`RetryPolicy`] and a real sleeper.
    pub fn new(inner: S) -> RetryingStorage<S> {
        RetryingStorage::with_policy(inner, RetryPolicy::default())
    }

    /// Wraps `inner` with an explicit policy and a real sleeper.
    pub fn with_policy(inner: S, policy: RetryPolicy) -> RetryingStorage<S> {
        RetryingStorage::with_sleeper(inner, policy, Arc::new(std::thread::sleep))
    }

    /// Wraps `inner` with an explicit policy and an injected sleeper —
    /// the deterministic-test entry point.
    pub fn with_sleeper(inner: S, policy: RetryPolicy, sleeper: Sleeper) -> RetryingStorage<S> {
        RetryingStorage {
            inner,
            policy,
            sleeper,
            obs: Obs::default(),
            state: BreakerState::Closed,
            consecutive_failures: 0,
            rejections: 0,
        }
    }

    /// Counts retries (`serve.retry`), retry exhaustions
    /// (`store.retry.exhausted`), breaker transitions
    /// (`serve.breaker_open`) and the live breaker state
    /// (`store.breaker.open` gauge) into `obs`. Builder-style.
    pub fn with_obs(mut self, obs: Obs) -> RetryingStorage<S> {
        self.obs = obs;
        self
    }

    /// The wrapped storage, for test assertions.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Current breaker state.
    pub fn breaker_state(&self) -> BreakerState {
        self.state
    }

    /// Runs one operation under retry + breaker discipline.
    fn run<T>(
        &mut self,
        op: &'static str,
        file: &str,
        mut f: impl FnMut(&mut S) -> Result<T, StoreError>,
    ) -> Result<T, StoreError> {
        match self.state {
            BreakerState::Open => {
                self.rejections += 1;
                if self.rejections >= self.policy.probe_after {
                    self.set_state(BreakerState::HalfOpen);
                } else {
                    return Err(StoreError::new(
                        op,
                        file,
                        "circuit breaker open; persistence suspended",
                    ));
                }
            }
            BreakerState::Closed | BreakerState::HalfOpen => {}
        }
        // While half-open, exactly one probe attempt goes through — no
        // retries, so a still-dead disk costs one I/O, not a backoff
        // storm.
        let budgeted_retries = match self.state {
            BreakerState::HalfOpen => 0,
            _ => self.policy.max_retries,
        };
        let mut retry = 0u32;
        loop {
            match f(&mut self.inner) {
                Ok(v) => {
                    if self.state != BreakerState::Closed {
                        self.set_state(BreakerState::Closed);
                    }
                    self.consecutive_failures = 0;
                    return Ok(v);
                }
                Err(e) if e.is_transient() && retry < budgeted_retries => {
                    self.obs.metrics.counter("serve.retry").inc();
                    (self.sleeper)(self.policy.backoff(retry));
                    retry += 1;
                }
                Err(e) => {
                    if retry > 0 {
                        self.obs.metrics.counter("store.retry.exhausted").inc();
                    }
                    self.note_failure();
                    return Err(e);
                }
            }
        }
    }

    /// One operation ultimately failed; advance the breaker.
    fn note_failure(&mut self) {
        match self.state {
            BreakerState::HalfOpen => self.set_state(BreakerState::Open),
            BreakerState::Closed => {
                self.consecutive_failures += 1;
                if self.consecutive_failures >= self.policy.breaker_threshold {
                    self.set_state(BreakerState::Open);
                }
            }
            BreakerState::Open => {}
        }
    }

    fn set_state(&mut self, state: BreakerState) {
        if state == BreakerState::Open && self.state != BreakerState::Open {
            self.obs.metrics.counter("serve.breaker_open").inc();
        }
        self.state = state;
        if state == BreakerState::Open {
            self.rejections = 0;
        }
        self.obs
            .metrics
            .gauge("store.breaker.open")
            .set(u64::from(state != BreakerState::Closed));
    }
}

impl<S: Storage> Storage for RetryingStorage<S> {
    fn read(&mut self, file: &str) -> Result<Option<Vec<u8>>, StoreError> {
        self.run("read", file, |s| s.read(file))
    }

    fn write(&mut self, file: &str, data: &[u8]) -> Result<(), StoreError> {
        self.run("write", file, |s| s.write(file, data))
    }

    fn append(&mut self, file: &str, data: &[u8]) -> Result<(), StoreError> {
        self.run("append", file, |s| s.append(file, data))
    }

    fn truncate(&mut self, file: &str, len: u64) -> Result<(), StoreError> {
        self.run("truncate", file, |s| s.truncate(file, len))
    }

    fn sync(&mut self, file: &str) -> Result<(), StoreError> {
        self.run("sync", file, |s| s.sync(file))
    }

    fn rename(&mut self, from: &str, to: &str) -> Result<(), StoreError> {
        self.run("rename", from, |s| s.rename(from, to))
    }

    fn remove(&mut self, file: &str) -> Result<(), StoreError> {
        self.run("remove", file, |s| s.remove(file))
    }

    fn breaker_open(&self) -> bool {
        self.state != BreakerState::Closed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chaos::{ChaosStorage, Fault};
    use crate::storage::MemStorage;
    use std::sync::Mutex;

    /// A sleeper that records instead of sleeping.
    fn recording_sleeper() -> (Sleeper, Arc<Mutex<Vec<Duration>>>) {
        let log = Arc::new(Mutex::new(Vec::new()));
        let log2 = Arc::clone(&log);
        let sleeper: Sleeper = Arc::new(move |d| log2.lock().unwrap().push(d));
        (sleeper, log)
    }

    fn policy() -> RetryPolicy {
        RetryPolicy {
            max_retries: 3,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(4),
            breaker_threshold: 2,
            probe_after: 3,
        }
    }

    #[test]
    fn transient_burst_is_absorbed_with_deterministic_backoff() {
        let mem = MemStorage::new();
        let chaos = ChaosStorage::intermittent(mem.clone(), 1, 2, Fault::Fail);
        let (sleeper, log) = recording_sleeper();
        let mut retry = RetryingStorage::with_sleeper(chaos, policy(), sleeper);
        retry.append("f", b"abc").unwrap();
        assert_eq!(mem.clone().read("f").unwrap().unwrap(), b"abc");
        assert_eq!(
            *log.lock().unwrap(),
            vec![Duration::from_millis(1), Duration::from_millis(2)]
        );
        assert_eq!(retry.breaker_state(), BreakerState::Closed);
    }

    #[test]
    fn backoff_caps_at_max() {
        let p = policy();
        assert_eq!(p.backoff(0), Duration::from_millis(1));
        assert_eq!(p.backoff(1), Duration::from_millis(2));
        assert_eq!(p.backoff(2), Duration::from_millis(4));
        assert_eq!(p.backoff(3), Duration::from_millis(4)); // capped
        assert_eq!(p.backoff(40), Duration::from_millis(4)); // shl overflow capped
    }

    #[test]
    fn permanent_errors_are_not_retried() {
        let mem = MemStorage::new();
        let (sleeper, log) = recording_sleeper();
        let mut retry = RetryingStorage::with_sleeper(mem, policy(), sleeper);
        // MemStorage truncate of a missing file is a permanent error.
        assert!(retry.truncate("missing", 0).is_err());
        assert!(log.lock().unwrap().is_empty(), "no backoff on permanent");
    }

    #[test]
    fn exhausted_retries_fail_and_open_breaker_after_threshold() {
        let mem = MemStorage::new();
        // Fault burst far longer than any retry budget.
        let chaos = ChaosStorage::intermittent(mem, 1, 1_000, Fault::Fail);
        let (sleeper, _) = recording_sleeper();
        let mut retry = RetryingStorage::with_sleeper(chaos, policy(), sleeper);
        assert!(retry.append("f", b"a").is_err()); // failure 1 (4 attempts)
        assert_eq!(retry.breaker_state(), BreakerState::Closed);
        assert!(retry.append("f", b"a").is_err()); // failure 2 → open
        assert_eq!(retry.breaker_state(), BreakerState::Open);
        assert!(retry.breaker_open());
        // Fail-fast: no attempts reach the inner storage.
        let ops_before = retry.inner().ops();
        assert!(retry.append("f", b"a").is_err());
        assert_eq!(retry.inner().ops(), ops_before);
    }

    #[test]
    fn breaker_probes_half_open_and_closes_on_success() {
        let mem = MemStorage::new();
        // 9 faulted ops: 4 (first op incl. retries) + 4 (second) + 1
        // (the half-open probe), then healed.
        let chaos = ChaosStorage::intermittent(mem.clone(), 1, 9, Fault::Fail);
        let (sleeper, _) = recording_sleeper();
        let mut retry = RetryingStorage::with_sleeper(chaos, policy(), sleeper);
        assert!(retry.append("f", b"a").is_err());
        assert!(retry.append("f", b"a").is_err());
        assert_eq!(retry.breaker_state(), BreakerState::Open);
        // Two fail-fast rejections, then the third becomes the probe —
        // which strikes the last fault and re-opens the breaker.
        assert!(retry.append("f", b"a").is_err());
        assert!(retry.append("f", b"a").is_err());
        assert!(retry.append("f", b"a").is_err()); // probe, fails
        assert_eq!(retry.breaker_state(), BreakerState::Open);
        // Next probe hits the healed storage and closes the breaker.
        assert!(retry.append("f", b"a").is_err()); // rejection 1
        assert!(retry.append("f", b"a").is_err()); // rejection 2
        retry.append("f", b"a").unwrap(); // probe, succeeds
        assert_eq!(retry.breaker_state(), BreakerState::Closed);
        assert!(!retry.breaker_open());
        assert_eq!(mem.clone().read("f").unwrap().unwrap(), b"a");
    }

    #[test]
    fn metrics_count_retries_and_breaker_opens() {
        let obs = Obs::new();
        let chaos = ChaosStorage::intermittent(MemStorage::new(), 1, 1_000, Fault::Fail);
        let (sleeper, _) = recording_sleeper();
        let mut retry =
            RetryingStorage::with_sleeper(chaos, policy(), sleeper).with_obs(obs.clone());
        assert!(retry.append("f", b"a").is_err());
        assert!(retry.append("f", b"a").is_err());
        let snap = obs.metrics.snapshot();
        assert_eq!(snap.counter("serve.retry"), Some(6)); // 3 per op
        assert_eq!(snap.counter("store.retry.exhausted"), Some(2));
        assert_eq!(snap.counter("serve.breaker_open"), Some(1));
        assert_eq!(snap.gauge("store.breaker.open"), Some(1));
    }
}
