//! Retrying storage with a circuit breaker — the absorption layer
//! between a serving session and a flaky disk.
//!
//! [`RetryingStorage`] wraps any [`Storage`] and gives every operation
//! two defenses:
//!
//! * **bounded retry with exponential backoff** for *transient* failures
//!   ([`StoreError::is_transient`]): the operation is re-attempted up to
//!   [`RetryPolicy::max_retries`] times, sleeping `base_backoff · 2ⁿ`
//!   (capped at `max_backoff`) between attempts. The backoff schedule is
//!   deterministic and the sleeper is injectable, so tests assert the
//!   exact sleep sequence without waiting for it.
//! * **a circuit breaker** for failures retry cannot absorb: after
//!   [`RetryPolicy::breaker_threshold`] *consecutive* operations that
//!   ultimately failed (a permanent error, or a transient one that
//!   outlived its retries), the breaker **opens** and every subsequent
//!   operation fails fast — no I/O, no backoff sleeps — so a session can
//!   keep answering queries read-only instead of stalling each load on a
//!   full retry storm against a dead disk. After
//!   [`RetryPolicy::probe_after`] fail-fast rejections the breaker goes
//!   **half-open**: the next operation is attempted for real; success
//!   closes the breaker, failure re-opens it.
//!
//! Retrying an `append` is **not** blind. A failed attempt may have
//! landed a torn prefix (see [`Fault::ShortWrite`]), and appending the
//! retry after it would bury the tear *mid*-log — where a framing scan
//! stops and silently drops every acked record behind it. So `append`
//! captures the file's length first (via [`Storage::len`]), rolls the
//! file back to it whenever a failed attempt left the length changed
//! (including after the *final* failure, so torn bytes never outlive the
//! call as anything but a clean pre-attempt tail), and if even that
//! cleanup fails — the disk is still down — remembers the known-good
//! length and repairs the file on the first append after the storage
//! heals. The same rollback also removes the landed copy when an append
//! succeeded but its ack was lost, so retries do not duplicate records.
//! Only when the length itself cannot be read does the retry fall back
//! to blind re-append, whose duplicate-record outcome
//! ([`Fault::DuplicateAppend`]) recovery already tolerates: duplicate
//! epochs are skipped during replay.
//!
//! [`Fault::ShortWrite`]: crate::chaos::Fault::ShortWrite
//! [`Fault::DuplicateAppend`]: crate::chaos::Fault::DuplicateAppend

use crate::storage::{Storage, StoreError};
use clogic_obs::Obs;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

/// Retry and breaker tuning for a [`RetryingStorage`].
#[derive(Clone, Debug)]
pub struct RetryPolicy {
    /// Re-attempts allowed per operation beyond the first try.
    pub max_retries: u32,
    /// Backoff before the first retry; doubles per further retry.
    pub base_backoff: Duration,
    /// Ceiling on any single backoff sleep.
    pub max_backoff: Duration,
    /// Consecutive ultimately-failed operations that open the breaker.
    pub breaker_threshold: u32,
    /// Fail-fast rejections while open before a half-open probe is
    /// allowed through. Counted in operations, not wall time, so breaker
    /// recovery is deterministic under test.
    pub probe_after: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 3,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(100),
            breaker_threshold: 3,
            probe_after: 8,
        }
    }
}

impl RetryPolicy {
    /// The deterministic backoff before retry number `n` (0-based):
    /// `base_backoff · 2ⁿ`, capped at `max_backoff`.
    pub fn backoff(&self, retry: u32) -> Duration {
        let exp = self
            .base_backoff
            .saturating_mul(1u32.checked_shl(retry).unwrap_or(u32::MAX));
        exp.min(self.max_backoff)
    }
}

/// Where the circuit breaker stands.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BreakerState {
    /// Operations flow through (with retry protection).
    Closed,
    /// Persistence is suspended; operations fail fast without I/O.
    Open,
    /// The next operation is a probe: success closes the breaker,
    /// failure re-opens it.
    HalfOpen,
}

impl std::fmt::Display for BreakerState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half-open",
        })
    }
}

/// The sleep function a [`RetryingStorage`] backs off with. The default
/// is [`std::thread::sleep`]; tests inject a recorder so the backoff
/// schedule is asserted, not waited for.
pub type Sleeper = Arc<dyn Fn(Duration) + Send + Sync>;

/// A [`Storage`] wrapper adding bounded retry with exponential backoff
/// and a circuit breaker. See the [module docs](self) for the protocol.
pub struct RetryingStorage<S> {
    inner: S,
    policy: RetryPolicy,
    sleeper: Sleeper,
    obs: Obs,
    state: BreakerState,
    /// Consecutive operations that ultimately failed (resets on success).
    consecutive_failures: u32,
    /// Fail-fast rejections since the breaker opened.
    rejections: u32,
    /// Pre-attempt lengths of files whose last failed `append` may have
    /// left a torn tail that could not be rolled back (the cleanup
    /// failed too — the disk was still down). The next append to such a
    /// file rolls it back to this length before writing, so a torn tail
    /// never ends up *mid*-log. `None` means the file did not exist.
    torn: HashMap<String, Option<u64>>,
}

/// Restores `file` to its pre-append state: `Some(n)` → truncate back to
/// `n` bytes; `None` → the file did not exist, so remove it.
fn rollback<S: Storage>(inner: &mut S, file: &str, base: Option<u64>) -> Result<(), StoreError> {
    match base {
        Some(n) => inner.truncate(file, n),
        None => inner.remove(file),
    }
}

impl<S: Storage> RetryingStorage<S> {
    /// Wraps `inner` with the default [`RetryPolicy`] and a real sleeper.
    pub fn new(inner: S) -> RetryingStorage<S> {
        RetryingStorage::with_policy(inner, RetryPolicy::default())
    }

    /// Wraps `inner` with an explicit policy and a real sleeper.
    pub fn with_policy(inner: S, policy: RetryPolicy) -> RetryingStorage<S> {
        RetryingStorage::with_sleeper(inner, policy, Arc::new(std::thread::sleep))
    }

    /// Wraps `inner` with an explicit policy and an injected sleeper —
    /// the deterministic-test entry point.
    pub fn with_sleeper(inner: S, policy: RetryPolicy, sleeper: Sleeper) -> RetryingStorage<S> {
        RetryingStorage {
            inner,
            policy,
            sleeper,
            obs: Obs::default(),
            state: BreakerState::Closed,
            consecutive_failures: 0,
            rejections: 0,
            torn: HashMap::new(),
        }
    }

    /// Counts retries (`serve.retry`), retry exhaustions
    /// (`store.retry.exhausted`), breaker transitions
    /// (`serve.breaker_open`) and the live breaker state
    /// (`store.breaker.open` gauge) into `obs`. Builder-style.
    pub fn with_obs(mut self, obs: Obs) -> RetryingStorage<S> {
        self.obs = obs;
        self
    }

    /// The wrapped storage, for test assertions.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Current breaker state.
    pub fn breaker_state(&self) -> BreakerState {
        self.state
    }

    /// Runs one operation under retry + breaker discipline.
    fn run<T>(
        &mut self,
        op: &'static str,
        file: &str,
        mut f: impl FnMut(&mut S) -> Result<T, StoreError>,
    ) -> Result<T, StoreError> {
        match self.state {
            BreakerState::Open => {
                self.rejections += 1;
                if self.rejections >= self.policy.probe_after {
                    self.set_state(BreakerState::HalfOpen);
                } else {
                    return Err(StoreError::new(
                        op,
                        file,
                        "circuit breaker open; persistence suspended",
                    ));
                }
            }
            BreakerState::Closed | BreakerState::HalfOpen => {}
        }
        // While half-open, exactly one probe attempt goes through — no
        // retries, so a still-dead disk costs one I/O, not a backoff
        // storm.
        let budgeted_retries = match self.state {
            BreakerState::HalfOpen => 0,
            _ => self.policy.max_retries,
        };
        let mut retry = 0u32;
        loop {
            match f(&mut self.inner) {
                Ok(v) => {
                    if self.state != BreakerState::Closed {
                        self.set_state(BreakerState::Closed);
                    }
                    self.consecutive_failures = 0;
                    return Ok(v);
                }
                Err(e) if e.is_transient() && retry < budgeted_retries => {
                    self.obs.metrics.counter("serve.retry").inc();
                    (self.sleeper)(self.policy.backoff(retry));
                    retry += 1;
                }
                Err(e) => {
                    if retry > 0 {
                        self.obs.metrics.counter("store.retry.exhausted").inc();
                    }
                    self.note_failure();
                    return Err(e);
                }
            }
        }
    }

    /// One operation ultimately failed; advance the breaker.
    fn note_failure(&mut self) {
        match self.state {
            BreakerState::HalfOpen => self.set_state(BreakerState::Open),
            BreakerState::Closed => {
                self.consecutive_failures += 1;
                if self.consecutive_failures >= self.policy.breaker_threshold {
                    self.set_state(BreakerState::Open);
                }
            }
            BreakerState::Open => {}
        }
    }

    fn set_state(&mut self, state: BreakerState) {
        if state == BreakerState::Open && self.state != BreakerState::Open {
            self.obs.metrics.counter("serve.breaker_open").inc();
        }
        self.state = state;
        if state == BreakerState::Open {
            self.rejections = 0;
        }
        self.obs
            .metrics
            .gauge("store.breaker.open")
            .set(u64::from(state != BreakerState::Closed));
    }
}

impl<S: Storage> Storage for RetryingStorage<S> {
    fn read(&mut self, file: &str) -> Result<Option<Vec<u8>>, StoreError> {
        self.run("read", file, |s| s.read(file))
    }

    fn write(&mut self, file: &str, data: &[u8]) -> Result<(), StoreError> {
        self.run("write", file, |s| s.write(file, data))
    }

    fn append(&mut self, file: &str, data: &[u8]) -> Result<(), StoreError> {
        // See the module docs: capture the pre-attempt length, roll the
        // file back to it before any retry (and after a final failure),
        // so a torn attempt never ends up buried mid-log under records
        // appended later. `base` is the *known* pre-attempt state —
        // either remembered from a previous failed append whose cleanup
        // also failed, or probed now; `None` (outer) means the length
        // could not be determined and retry falls back to blind
        // re-append.
        let base: Option<Option<u64>> = match self.torn.get(file).copied() {
            Some(b) => Some(b),
            None => self.inner.len(file).ok(),
        };
        let mut attempted = false;
        let result = self.run("append", file, |s| {
            attempted = true;
            if let Some(base) = base {
                if s.len(file)? != base {
                    rollback(s, file, base)?;
                }
            }
            s.append(file, data)
        });
        match (&result, base) {
            (Ok(()), _) => {
                self.torn.remove(file);
            }
            (Err(_), Some(base)) if attempted => {
                // Leave the file clean-tailed if at all possible; when
                // even the cleanup fails, remember the known-good length
                // so the next append repairs the file before writing.
                let clean = match self.inner.len(file) {
                    Ok(len) if len == base => true,
                    _ => rollback(&mut self.inner, file, base).is_ok(),
                };
                if clean {
                    self.torn.remove(file);
                } else {
                    self.torn.insert(file.to_string(), base);
                }
            }
            _ => {}
        }
        result
    }

    fn truncate(&mut self, file: &str, len: u64) -> Result<(), StoreError> {
        self.run("truncate", file, |s| s.truncate(file, len))
    }

    fn sync(&mut self, file: &str) -> Result<(), StoreError> {
        self.run("sync", file, |s| s.sync(file))
    }

    fn rename(&mut self, from: &str, to: &str) -> Result<(), StoreError> {
        self.run("rename", from, |s| s.rename(from, to))
    }

    fn remove(&mut self, file: &str) -> Result<(), StoreError> {
        self.run("remove", file, |s| s.remove(file))
    }

    fn len(&mut self, file: &str) -> Result<Option<u64>, StoreError> {
        self.run("len", file, |s| s.len(file))
    }

    fn breaker_open(&self) -> bool {
        self.state != BreakerState::Closed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chaos::{ChaosStorage, Fault};
    use crate::storage::MemStorage;
    use std::sync::Mutex;

    /// A sleeper that records instead of sleeping.
    fn recording_sleeper() -> (Sleeper, Arc<Mutex<Vec<Duration>>>) {
        let log = Arc::new(Mutex::new(Vec::new()));
        let log2 = Arc::clone(&log);
        let sleeper: Sleeper = Arc::new(move |d| log2.lock().unwrap().push(d));
        (sleeper, log)
    }

    fn policy() -> RetryPolicy {
        RetryPolicy {
            max_retries: 3,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(4),
            breaker_threshold: 2,
            probe_after: 3,
        }
    }

    #[test]
    fn transient_burst_is_absorbed_with_deterministic_backoff() {
        let mem = MemStorage::new();
        let chaos = ChaosStorage::intermittent(mem.clone(), 1, 2, Fault::Fail);
        let (sleeper, log) = recording_sleeper();
        let mut retry = RetryingStorage::with_sleeper(chaos, policy(), sleeper);
        retry.append("f", b"abc").unwrap();
        assert_eq!(mem.clone().read("f").unwrap().unwrap(), b"abc");
        assert_eq!(
            *log.lock().unwrap(),
            vec![Duration::from_millis(1), Duration::from_millis(2)]
        );
        assert_eq!(retry.breaker_state(), BreakerState::Closed);
    }

    #[test]
    fn backoff_caps_at_max() {
        let p = policy();
        assert_eq!(p.backoff(0), Duration::from_millis(1));
        assert_eq!(p.backoff(1), Duration::from_millis(2));
        assert_eq!(p.backoff(2), Duration::from_millis(4));
        assert_eq!(p.backoff(3), Duration::from_millis(4)); // capped
        assert_eq!(p.backoff(40), Duration::from_millis(4)); // shl overflow capped
    }

    #[test]
    fn permanent_errors_are_not_retried() {
        let mem = MemStorage::new();
        let (sleeper, log) = recording_sleeper();
        let mut retry = RetryingStorage::with_sleeper(mem, policy(), sleeper);
        // MemStorage truncate of a missing file is a permanent error.
        assert!(retry.truncate("missing", 0).is_err());
        assert!(log.lock().unwrap().is_empty(), "no backoff on permanent");
    }

    #[test]
    fn exhausted_retries_fail_and_open_breaker_after_threshold() {
        let mem = MemStorage::new();
        // Fault burst far longer than any retry budget.
        let chaos = ChaosStorage::intermittent(mem, 1, 1_000, Fault::Fail);
        let (sleeper, _) = recording_sleeper();
        let mut retry = RetryingStorage::with_sleeper(chaos, policy(), sleeper);
        assert!(retry.append("f", b"a").is_err()); // failure 1 (4 attempts)
        assert_eq!(retry.breaker_state(), BreakerState::Closed);
        assert!(retry.append("f", b"a").is_err()); // failure 2 → open
        assert_eq!(retry.breaker_state(), BreakerState::Open);
        assert!(retry.breaker_open());
        // Fail-fast: no attempts reach the inner storage.
        let ops_before = retry.inner().ops();
        assert!(retry.append("f", b"a").is_err());
        assert_eq!(retry.inner().ops(), ops_before);
    }

    #[test]
    fn breaker_probes_half_open_and_closes_on_success() {
        let mem = MemStorage::new();
        // 9 faulted ops: 4 (first op incl. retries) + 4 (second) + 1
        // (the half-open probe), then healed.
        let chaos = ChaosStorage::intermittent(mem.clone(), 1, 9, Fault::Fail);
        let (sleeper, _) = recording_sleeper();
        let mut retry = RetryingStorage::with_sleeper(chaos, policy(), sleeper);
        assert!(retry.append("f", b"a").is_err());
        assert!(retry.append("f", b"a").is_err());
        assert_eq!(retry.breaker_state(), BreakerState::Open);
        // Two fail-fast rejections, then the third becomes the probe —
        // which strikes the last fault and re-opens the breaker.
        assert!(retry.append("f", b"a").is_err());
        assert!(retry.append("f", b"a").is_err());
        assert!(retry.append("f", b"a").is_err()); // probe, fails
        assert_eq!(retry.breaker_state(), BreakerState::Open);
        // Next probe hits the healed storage and closes the breaker.
        assert!(retry.append("f", b"a").is_err()); // rejection 1
        assert!(retry.append("f", b"a").is_err()); // rejection 2
        retry.append("f", b"a").unwrap(); // probe, succeeds
        assert_eq!(retry.breaker_state(), BreakerState::Closed);
        assert!(!retry.breaker_open());
        assert_eq!(mem.clone().read("f").unwrap().unwrap(), b"a");
    }

    #[test]
    fn short_write_append_is_rolled_back_not_buried() {
        let mem = MemStorage::new();
        mem.clone().append("f", b"BASE").unwrap();
        let chaos = ChaosStorage::new(mem.clone(), 1, Fault::ShortWrite);
        let (sleeper, _) = recording_sleeper();
        let mut retry = RetryingStorage::with_sleeper(chaos, policy(), sleeper);
        retry.append("f", b"record").unwrap();
        // The torn prefix from the first attempt was truncated away
        // before the retry — no fragment buried mid-file.
        assert_eq!(mem.clone().read("f").unwrap().unwrap(), b"BASErecord");
    }

    #[test]
    fn exhausted_short_writes_leave_no_torn_tail_after_healing() {
        let mem = MemStorage::new();
        mem.clone().append("f", b"BASE").unwrap();
        // A burst long enough to exhaust the retry budget *and* the
        // final cleanup truncate.
        let chaos = ChaosStorage::intermittent(mem.clone(), 1, 5, Fault::ShortWrite);
        let (sleeper, _) = recording_sleeper();
        let mut retry = RetryingStorage::with_sleeper(chaos, policy(), sleeper);
        assert!(retry.append("f", b"record").is_err());
        // The failed append left a torn tail the cleanup could not
        // remove while the disk was down...
        assert_ne!(mem.len("f"), Some(4));
        // ...but the first append after healing repairs it first.
        retry.append("f", b"tail!!").unwrap();
        assert_eq!(mem.clone().read("f").unwrap().unwrap(), b"BASEtail!!");
    }

    #[test]
    fn acked_wal_records_survive_retried_faults_at_every_boundary() {
        use crate::log::DurableLog;
        use clogic_core::skolem::SkolemState;

        // End-to-end: a WAL over retrying storage over a flaky disk.
        // Every append the log *acked* must replay after reopen — a
        // torn or duplicated first attempt must never take acked
        // records down with it. Clean run: 5 ops to open + 2 per
        // append; sweep a one-shot fault across all of them.
        let record = |epoch: u64| crate::wal::LoadRecord {
            op: crate::wal::WalOp::Load,
            epoch,
            skolem: SkolemState::default(),
            source: format!("t{epoch}: c{epoch}."),
        };
        for fault in Fault::ALL {
            for trigger in 1..=9u64 {
                let mem = MemStorage::new();
                let chaos = ChaosStorage::new(mem.clone(), trigger, fault);
                let (sleeper, _) = recording_sleeper();
                let retry = RetryingStorage::with_sleeper(chaos, policy(), sleeper);
                let mut log = DurableLog::open(Box::new(retry) as Box<dyn Storage>)
                    .unwrap_or_else(|e| panic!("open under {fault:?}@{trigger}: {e}"))
                    .log;
                log.append(&record(1)).unwrap();
                log.append(&record(2)).unwrap();

                let reopened = DurableLog::open(Box::new(mem)).unwrap();
                assert!(
                    reopened.report.corruption.is_empty(),
                    "{fault:?}@{trigger}: acked WAL should scan clean, got {:?}",
                    reopened.report.corruption
                );
                let epochs: Vec<u64> =
                    reopened.records.iter().map(|r| r.record.epoch).collect();
                for epoch in [1, 2] {
                    assert!(
                        epochs.contains(&epoch),
                        "{fault:?}@{trigger}: acked epoch {epoch} lost; replayed {epochs:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn metrics_count_retries_and_breaker_opens() {
        let obs = Obs::new();
        let chaos = ChaosStorage::intermittent(MemStorage::new(), 1, 1_000, Fault::Fail);
        let (sleeper, _) = recording_sleeper();
        let mut retry =
            RetryingStorage::with_sleeper(chaos, policy(), sleeper).with_obs(obs.clone());
        assert!(retry.append("f", b"a").is_err());
        assert!(retry.append("f", b"a").is_err());
        let snap = obs.metrics.snapshot();
        assert_eq!(snap.counter("serve.retry"), Some(6)); // 3 per op
        assert_eq!(snap.counter("store.retry.exhausted"), Some(2));
        assert_eq!(snap.counter("serve.breaker_open"), Some(1));
        assert_eq!(snap.gauge("store.breaker.open"), Some(1));
    }
}
