//! # clogic — C-Logic of Complex Objects
//!
//! Facade crate re-exporting the full C-logic stack:
//!
//! * [`core`] — the formalism: terms, molecules, type hierarchy, semantics,
//!   the transformation into first-order logic (Theorem 1), redundancy
//!   elimination and skolemization of object identities.
//! * [`parser`] — concrete syntax for C-logic programs.
//! * [`folog`] — the first-order definite-clause engine substrate
//!   (unification, naive/semi-naive bottom-up, SLD, tabling).
//! * [`engine`] — direct evaluation over complex objects (order-sorted
//!   type resolution, object clustering, residuation).
//! * [`store`] — durability: snapshot + write-ahead-log persistence with
//!   checksummed records, crash recovery, and a fault-injection seam.
//! * [`obs`] — observability: the metrics registry, span tracer, and
//!   [`obs::Render`] trait behind [`Session::explain`] and the REPL's
//!   `:explain` / `:metrics` commands.
//! * [`session`] — the high-level API: load a program once, query it
//!   through any of the six evaluation strategies; optionally persistent
//!   ([`Session::persistent`]) with crash recovery.
#![warn(missing_docs)]

pub use clogic_core as core;
pub use clogic_engine as engine;
pub use clogic_obs as obs;
pub use clogic_parser as parser;
pub use clogic_store as store;
pub use folog;

pub mod session;

pub use obs::Render;
pub use session::{
    Answers, ArtifactProvenance, CacheStats, ModelProvenance, QueryProfile, Session, SessionError,
    SessionOptions, SessionSnapshot, SnapshotCell, Strategy,
};
