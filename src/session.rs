//! A high-level session API over the whole C-logic stack.
//!
//! A [`Session`] holds one C-logic program and answers queries through any
//! of the implemented evaluation strategies:
//!
//! * [`Strategy::Direct`] — direct resolution over complex objects
//!   (clustered store, order-sorted types, residuation);
//! * [`Strategy::Sld`] — Theorem 1 translation, then top-down SLD;
//! * [`Strategy::BottomUpNaive`] / [`Strategy::BottomUpSemiNaive`] —
//!   translation, least-model fixpoint, query matching;
//! * [`Strategy::Tabled`] — translation, tabled top-down evaluation;
//! * [`Strategy::Magic`] — translation, magic-sets rewrite, bottom-up.
//!
//! All strategies return the same answer sets (the executable content of
//! Theorem 1; property-tested in `tests/equivalence.rs`).
//!
//! ```
//! use clogic::session::{Session, Strategy};
//!
//! let mut s = Session::new();
//! s.load(
//!     "person: john[children => {bob, bill}].
//!      parent(X) :- person: X[children => Y].",
//! )
//! .unwrap();
//! let answers = s.query("parent(X)", Strategy::Direct).unwrap();
//! assert_eq!(answers.rows.len(), 1);
//! assert_eq!(answers.rows[0].get("X"), Some("john".to_string()));
//! ```

use clogic_core::fol::{FoAtom, FoProgram, FoTerm};
use clogic_core::optimize::Optimizer;
use clogic_core::program::Program;
use clogic_core::skolem::{auto_skolemize, SkolemReport};
use clogic_core::symbol::Symbol;
use clogic_core::transform::Transformer;
use clogic_core::Query;
use clogic_engine::{DirectEngine, DirectOptions, DirectProgram};
use clogic_parser::{parse_query, parse_source, ParseError};
use folog::builtins::builtin_symbols;
use folog::magic::solve_magic;
use folog::tabling::{TabledEngine, TablingOptions};
use folog::{
    CompiledProgram, FixpointOptions, SldEngine, SldOptions, Strategy as FixpointStrategy,
};
use std::collections::BTreeMap;
use std::fmt;

/// An evaluation strategy.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Strategy {
    /// Direct resolution over complex objects (no translation).
    Direct,
    /// Translate to first-order clauses, run SLD resolution.
    Sld,
    /// Translate, compute the least model naively, match the query.
    BottomUpNaive,
    /// Translate, compute the least model semi-naively, match the query.
    BottomUpSemiNaive,
    /// Translate, run tabled top-down evaluation.
    Tabled,
    /// Translate, apply the magic-sets rewrite, evaluate bottom-up.
    Magic,
}

impl Strategy {
    /// All strategies, for cross-checking loops.
    pub const ALL: [Strategy; 6] = [
        Strategy::Direct,
        Strategy::Sld,
        Strategy::BottomUpNaive,
        Strategy::BottomUpSemiNaive,
        Strategy::Tabled,
        Strategy::Magic,
    ];
}

/// One answer row: query variable → ground term (display form available
/// via [`AnswerRow::get`]).
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct AnswerRow {
    /// Variable bindings, sorted by variable name.
    pub bindings: BTreeMap<Symbol, FoTerm>,
}

impl AnswerRow {
    /// The binding of a variable, rendered.
    pub fn get(&self, var: &str) -> Option<String> {
        self.bindings.get(&Symbol::new(var)).map(|t| t.to_string())
    }
}

impl fmt::Display for AnswerRow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.bindings.is_empty() {
            return write!(f, "yes");
        }
        for (i, (k, v)) in self.bindings.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{k} = {v}")?;
        }
        Ok(())
    }
}

/// The result of a query.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Answers {
    /// Sorted, deduplicated answer rows.
    pub rows: Vec<AnswerRow>,
    /// Whether the strategy explored its whole search space (SLD and
    /// Direct report `false` when cut off by limits).
    pub complete: bool,
}

impl Answers {
    /// True iff at least one answer.
    pub fn holds(&self) -> bool {
        !self.rows.is_empty()
    }

    /// The rows rendered, for golden tests.
    pub fn rendered(&self) -> Vec<String> {
        self.rows.iter().map(|r| r.to_string()).collect()
    }
}

/// Any error the session can raise.
#[derive(Debug)]
pub enum SessionError {
    /// Source failed to parse.
    Parse(ParseError),
    /// The strategy does not support a feature the program/query uses.
    Unsupported(String),
    /// A built-in raised an error.
    Builtin(folog::builtins::BuiltinError),
    /// Bottom-up evaluation failed.
    Eval(folog::bottom_up::EvalError),
    /// Tabled evaluation failed.
    Tabling(folog::tabling::TablingError),
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionError::Parse(e) => write!(f, "{e}"),
            SessionError::Unsupported(m) => write!(f, "unsupported: {m}"),
            SessionError::Builtin(e) => write!(f, "{e}"),
            SessionError::Eval(e) => write!(f, "{e}"),
            SessionError::Tabling(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for SessionError {}

impl From<ParseError> for SessionError {
    fn from(e: ParseError) -> Self {
        SessionError::Parse(e)
    }
}
impl From<folog::builtins::BuiltinError> for SessionError {
    fn from(e: folog::builtins::BuiltinError) -> Self {
        SessionError::Builtin(e)
    }
}
impl From<folog::bottom_up::EvalError> for SessionError {
    fn from(e: folog::bottom_up::EvalError) -> Self {
        SessionError::Eval(e)
    }
}
impl From<folog::tabling::TablingError> for SessionError {
    fn from(e: folog::tabling::TablingError) -> Self {
        SessionError::Tabling(e)
    }
}

/// Tuning knobs for a session.
#[derive(Clone, Copy, Debug)]
pub struct SessionOptions {
    /// Apply the §4 redundancy-elimination rules to the translated
    /// program (on by default).
    pub optimize_translation: bool,
    /// Automatically skolemize head-only object variables (§2.1 high-
    /// level interface; on by default).
    pub auto_skolemize: bool,
    /// Options for the direct engine.
    pub direct: DirectOptions,
    /// Options for SLD.
    pub sld: SldOptions,
    /// Options for tabling.
    pub tabling: TablingOptions,
}

impl Default for SessionOptions {
    fn default() -> Self {
        SessionOptions {
            optimize_translation: true,
            auto_skolemize: true,
            direct: DirectOptions::default(),
            sld: SldOptions::default(),
            tabling: TablingOptions::default(),
        }
    }
}

/// A loaded C-logic program plus every compiled artefact needed by the
/// strategies. Compiled artefacts are built lazily and cached.
#[derive(Default)]
pub struct Session {
    options: SessionOptions,
    program: Program,
    skolem_reports: Vec<SkolemReport>,
    // caches
    translated: Option<FoProgram>,
    compiled_fo: Option<CompiledProgram>,
    direct: Option<DirectProgram>,
}

impl Session {
    /// An empty session with default options.
    pub fn new() -> Session {
        Session::default()
    }

    /// An empty session with explicit options.
    pub fn with_options(options: SessionOptions) -> Session {
        Session {
            options,
            ..Session::default()
        }
    }

    /// Parses and loads more program text (cumulative). Queries embedded
    /// in the source are rejected — use [`Session::query`].
    pub fn load(&mut self, src: &str) -> Result<(), SessionError> {
        let parsed = parse_source(src)?;
        if !parsed.queries.is_empty() {
            return Err(SessionError::Parse(ParseError {
                message: "queries are not allowed in loaded sources; use Session::query".into(),
                line: 0,
                col: 0,
            }));
        }
        self.load_program(parsed.program);
        Ok(())
    }

    /// Loads an already-built program (cumulative).
    pub fn load_program(&mut self, mut p: Program) {
        if self.options.auto_skolemize {
            let (sk, mut reports) = auto_skolemize(&p);
            p = sk;
            self.skolem_reports.append(&mut reports);
        }
        self.program.subtype_decls.extend(p.subtype_decls);
        self.program.clauses.extend(p.clauses);
        self.invalidate();
    }

    /// The loaded program (after skolemization).
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// What was skolemized on load.
    pub fn skolem_reports(&self) -> &[SkolemReport] {
        &self.skolem_reports
    }

    fn invalidate(&mut self) {
        self.translated = None;
        self.compiled_fo = None;
        self.direct = None;
    }

    /// The translated first-order program (Theorem 1), optimized per the
    /// session options. Cached.
    pub fn translated(&mut self) -> &FoProgram {
        if self.translated.is_none() {
            let tr = Transformer::new();
            let fo = if self.options.optimize_translation {
                Optimizer::new(&self.program).optimized_program(&tr, &self.program)
            } else {
                tr.program(&self.program)
            };
            self.translated = Some(fo);
        }
        self.translated.as_ref().expect("just set")
    }

    fn compiled_fo(&mut self) -> &CompiledProgram {
        if self.compiled_fo.is_none() {
            let fo = self.translated().clone();
            self.compiled_fo = Some(CompiledProgram::compile(&fo, builtin_symbols()));
        }
        self.compiled_fo.as_ref().expect("just set")
    }

    fn direct_program(&mut self) -> &DirectProgram {
        if self.direct.is_none() {
            self.direct = Some(DirectProgram::compile(&self.program, builtin_symbols()));
        }
        self.direct.as_ref().expect("just set")
    }

    /// Translates a query for the first-order strategies (positive goals
    /// only; see [`Session::query_ast`] for negation handling).
    pub fn translate_query(&self, q: &Query) -> Vec<FoAtom> {
        Transformer::new().query(q)
    }

    /// Parses and answers a query with the given strategy.
    pub fn query(&mut self, src: &str, strategy: Strategy) -> Result<Answers, SessionError> {
        let q = parse_query(src)?;
        self.query_ast(&q, strategy)
    }

    /// Answers an already-parsed query.
    pub fn query_ast(&mut self, q: &Query, strategy: Strategy) -> Result<Answers, SessionError> {
        match strategy {
            Strategy::Direct => {
                let opts = self.options.direct;
                let dp = self.direct_program();
                let r = DirectEngine::new(dp, opts).solve(q)?;
                Ok(Answers {
                    rows: r
                        .answers
                        .into_iter()
                        .map(|bindings| AnswerRow { bindings })
                        .collect(),
                    complete: r.complete,
                })
            }
            Strategy::Sld => {
                let tr = Transformer::new();
                let mut aux = Vec::new();
                let mut counter = 0;
                let (goals, neg_goals) = tr.query_parts(q, &mut aux, &mut counter);
                let opts = self.options.sld;
                let r = if aux.is_empty() {
                    SldEngine::new(self.compiled_fo(), opts)
                        .solve_with_negation(&goals, &neg_goals)?
                } else {
                    // Conjunction-shaped negated goals need their
                    // auxiliary clauses in the program.
                    let mut cp = self.compiled_fo().clone();
                    for c in &aux {
                        cp.push_clause(c);
                    }
                    SldEngine::new(&cp, opts).solve_with_negation(&goals, &neg_goals)?
                };
                Ok(Answers {
                    rows: r
                        .answers
                        .into_iter()
                        .map(|bindings| AnswerRow { bindings })
                        .collect(),
                    complete: r.complete,
                })
            }
            Strategy::BottomUpNaive | Strategy::BottomUpSemiNaive => {
                let tr = Transformer::new();
                let mut aux = Vec::new();
                let mut counter = 0;
                let (goals, neg_goals) = tr.query_parts(q, &mut aux, &mut counter);
                let strategy = if strategy == Strategy::BottomUpNaive {
                    FixpointStrategy::Naive
                } else {
                    FixpointStrategy::SemiNaive
                };
                let ev = if aux.is_empty() {
                    folog::evaluate(
                        self.compiled_fo(),
                        FixpointOptions {
                            strategy,
                            ..FixpointOptions::default()
                        },
                    )?
                } else {
                    let mut fo = self.translated().clone();
                    for c in aux {
                        fo.push(c);
                    }
                    let cp = CompiledProgram::compile(&fo, builtin_symbols());
                    folog::evaluate(
                        &cp,
                        FixpointOptions {
                            strategy,
                            ..FixpointOptions::default()
                        },
                    )?
                };
                Ok(Answers {
                    rows: ev
                        .query_with_negation(&goals, &neg_goals)?
                        .into_iter()
                        .map(|bindings| AnswerRow {
                            bindings: bindings.into_iter().collect(),
                        })
                        .collect(),
                    complete: true,
                })
            }
            Strategy::Tabled => {
                if q.has_negation() {
                    return Err(SessionError::Unsupported(
                        "tabled evaluation does not support negation".into(),
                    ));
                }
                let goals = self.translate_query(q);
                let opts = self.options.tabling;
                let cp = self.compiled_fo();
                let r = TabledEngine::new(cp, opts).solve(&goals)?;
                Ok(Answers {
                    rows: r
                        .answers
                        .into_iter()
                        .map(|bindings| AnswerRow { bindings })
                        .collect(),
                    complete: true,
                })
            }
            Strategy::Magic => {
                if q.has_negation() {
                    return Err(SessionError::Unsupported(
                        "magic sets do not support negation".into(),
                    ));
                }
                let goals = self.translate_query(q);
                let fo = self.translated().clone();
                let builtins = builtin_symbols().collect();
                let (answers, _) = solve_magic(&fo, &goals, &builtins, FixpointOptions::default())?;
                Ok(Answers {
                    rows: answers
                        .into_iter()
                        .map(|bindings| AnswerRow {
                            bindings: bindings.into_iter().collect(),
                        })
                        .collect(),
                    complete: true,
                })
            }
        }
    }
}
