//! A high-level session API over the whole C-logic stack.
//!
//! A [`Session`] holds one C-logic program and answers queries through any
//! of the implemented evaluation strategies:
//!
//! * [`Strategy::Direct`] — direct resolution over complex objects
//!   (clustered store, order-sorted types, residuation);
//! * [`Strategy::Sld`] — Theorem 1 translation, then top-down SLD;
//! * [`Strategy::BottomUpNaive`] / [`Strategy::BottomUpSemiNaive`] —
//!   translation, least-model fixpoint, query matching;
//! * [`Strategy::Tabled`] — translation, tabled top-down evaluation;
//! * [`Strategy::Magic`] — translation, magic-sets rewrite, bottom-up.
//!
//! All strategies return the same answer sets (the executable content of
//! Theorem 1; property-tested in `tests/equivalence.rs`).
//!
//! ```
//! use clogic::session::{Session, Strategy};
//!
//! let mut s = Session::new();
//! s.load(
//!     "person: john[children => {bob, bill}].
//!      parent(X) :- person: X[children => Y].",
//! )
//! .unwrap();
//! let answers = s.query("parent(X)", Strategy::Direct).unwrap();
//! assert_eq!(answers.rows.len(), 1);
//! assert_eq!(answers.rows[0].get("X"), Some("john".to_string()));
//! ```

use clogic_core::fol::{FoAtom, FoClause, FoProgram, FoTerm};
use clogic_core::optimize::Optimizer;
use clogic_core::program::Program;
use clogic_core::skolem::{auto_skolemize_from, SkolemReport, SkolemState};
use clogic_core::symbol::Symbol;
use clogic_core::transform::{TranslationState, TranslationStats, Transformer};
use clogic_core::Query;
use clogic_engine::{DirectEngine, DirectOptions, DirectProgram};
use clogic_obs::{Json, MetricsSnapshot, Obs, Render};
use clogic_parser::{parse_query, parse_source, ParseError, ParseErrors};
use clogic_store::{
    DurableLog, FileStorage, LoadRecord, RecoveryIssue, RecoveryReport, SnapshotRecord, Storage,
    StoreError, WalOp, SNAPSHOT_FILE, WAL_FILE,
};
use folog::builtins::builtin_symbols;
use folog::magic::{solve_magic, solve_magic_labeled};
use folog::tabling::{TabledEngine, TablingOptions};
use folog::{
    Budget, ClauseOverlay, ClauseView, CompiledProgram, Degradation, Evaluation, FixpointOptions,
    FixpointStats, SldEngine, SldOptions, Strategy as FixpointStrategy,
};
use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// An evaluation strategy.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Strategy {
    /// Direct resolution over complex objects (no translation).
    Direct,
    /// Translate to first-order clauses, run SLD resolution.
    Sld,
    /// Translate, compute the least model naively, match the query.
    BottomUpNaive,
    /// Translate, compute the least model semi-naively, match the query.
    BottomUpSemiNaive,
    /// Translate, run tabled top-down evaluation.
    Tabled,
    /// Translate, apply the magic-sets rewrite, evaluate bottom-up.
    Magic,
}

impl Strategy {
    /// All strategies, for cross-checking loops.
    pub const ALL: [Strategy; 6] = [
        Strategy::Direct,
        Strategy::Sld,
        Strategy::BottomUpNaive,
        Strategy::BottomUpSemiNaive,
        Strategy::Tabled,
        Strategy::Magic,
    ];
}

/// One answer row: query variable → ground term (display form available
/// via [`AnswerRow::get`]).
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct AnswerRow {
    /// Variable bindings, sorted by variable name.
    pub bindings: BTreeMap<Symbol, FoTerm>,
}

impl AnswerRow {
    /// The binding of a variable, rendered.
    pub fn get(&self, var: &str) -> Option<String> {
        self.bindings.get(&Symbol::new(var)).map(|t| t.to_string())
    }
}

impl fmt::Display for AnswerRow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.bindings.is_empty() {
            return write!(f, "yes");
        }
        for (i, (k, v)) in self.bindings.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{k} = {v}")?;
        }
        Ok(())
    }
}

/// The result of a query.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Answers {
    /// Sorted, deduplicated answer rows.
    pub rows: Vec<AnswerRow>,
    /// Whether the strategy explored its whole search space. Every
    /// strategy reports `false` when cut off by an engine limit or a
    /// [`Budget`] ceiling; the rows found so far are still returned.
    pub complete: bool,
    /// Why evaluation stopped early, when `complete` is false.
    pub degradation: Option<Degradation>,
}

impl Answers {
    /// True iff at least one answer.
    pub fn holds(&self) -> bool {
        !self.rows.is_empty()
    }

    /// The rows rendered, for golden tests.
    pub fn rendered(&self) -> Vec<String> {
        self.rows.iter().map(|r| r.to_string()).collect()
    }
}

/// Any error the session can raise.
#[derive(Debug)]
pub enum SessionError {
    /// Source failed to parse; carries **every** diagnostic the parser
    /// collected (it recovers at each `.` and keeps going).
    Parse(ParseErrors),
    /// The strategy does not support a feature the program/query uses.
    Unsupported(String),
    /// A built-in raised an error.
    Builtin(folog::builtins::BuiltinError),
    /// Bottom-up evaluation failed.
    Eval(folog::bottom_up::EvalError),
    /// Tabled evaluation failed.
    Tabling(folog::tabling::TablingError),
    /// Durable storage failed. The in-memory session may be ahead of the
    /// log when this is returned from [`Session::load`] — treat it as a
    /// crash and recover from the store.
    Store(StoreError),
    /// A shared-access query ([`Session::query_shared`]) found the named
    /// artifact stale for the current epoch. Call [`Session::prepare`]
    /// (under exclusive access) after every load, then retry.
    NotPrepared(&'static str),
    /// [`Session::retract`] found no loaded clause matching one of the
    /// clauses in its source. Nothing was retracted (the operation is
    /// all-or-nothing).
    NoSuchClause(String),
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionError::Parse(e) => write!(f, "{e}"),
            SessionError::Unsupported(m) => write!(f, "unsupported: {m}"),
            SessionError::Builtin(e) => write!(f, "{e}"),
            SessionError::Eval(e) => write!(f, "{e}"),
            SessionError::Tabling(e) => write!(f, "{e}"),
            SessionError::Store(e) => write!(f, "{e}"),
            SessionError::NotPrepared(artifact) => write!(
                f,
                "session not prepared for shared queries: {artifact} is stale; \
                 call Session::prepare after loading"
            ),
            SessionError::NoSuchClause(c) => {
                write!(f, "retract: no loaded clause matches `{c}`")
            }
        }
    }
}

impl std::error::Error for SessionError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SessionError::Parse(e) => Some(e),
            SessionError::Unsupported(_)
            | SessionError::NotPrepared(_)
            | SessionError::NoSuchClause(_) => None,
            SessionError::Builtin(e) => Some(e),
            SessionError::Eval(e) => Some(e),
            SessionError::Tabling(e) => Some(e),
            SessionError::Store(e) => Some(e),
        }
    }
}

// Compile-time thread-safety contracts: `clogic-serve` serializes writes
// behind a `Mutex<Session>` while readers fan out over published
// `Arc<SessionSnapshot>`s, so `Session: Send + Sync`, the snapshot types,
// and everything a worker can return must hold by construction, not by
// test.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Session>();
    assert_send_sync::<SessionError>();
    assert_send_sync::<Answers>();
    assert_send_sync::<QueryProfile>();
    assert_send_sync::<SessionSnapshot>();
    assert_send_sync::<SnapshotCell>();
};

impl From<ParseError> for SessionError {
    fn from(e: ParseError) -> Self {
        SessionError::Parse(e.into())
    }
}
impl From<ParseErrors> for SessionError {
    fn from(e: ParseErrors) -> Self {
        SessionError::Parse(e)
    }
}
impl From<StoreError> for SessionError {
    fn from(e: StoreError) -> Self {
        SessionError::Store(e)
    }
}
impl From<folog::builtins::BuiltinError> for SessionError {
    fn from(e: folog::builtins::BuiltinError) -> Self {
        SessionError::Builtin(e)
    }
}
impl From<folog::bottom_up::EvalError> for SessionError {
    fn from(e: folog::bottom_up::EvalError) -> Self {
        SessionError::Eval(e)
    }
}
impl From<folog::tabling::TablingError> for SessionError {
    fn from(e: folog::tabling::TablingError) -> Self {
        SessionError::Tabling(e)
    }
}

/// Tuning knobs for a session.
#[derive(Clone, Debug)]
pub struct SessionOptions {
    /// Apply the §4 redundancy-elimination rules to the translated
    /// program (on by default).
    pub optimize_translation: bool,
    /// Automatically skolemize head-only object variables (§2.1 high-
    /// level interface; on by default).
    pub auto_skolemize: bool,
    /// Session-wide resource budget, merged (tighter ceiling wins, per
    /// axis) into every engine's own budget on each query. Unlimited by
    /// default; see [`SessionOptions::termination_guard`] for the safety
    /// net that kicks in on provably dangerous programs.
    pub budget: Budget,
    /// Statically analyse the translated program before each query and,
    /// when skolem-function recursion is detected (a recursive predicate
    /// whose head constructs non-ground function terms — the signature of
    /// an infinite least model, see `clogic_core::termination`), bound the
    /// effective budget with a default deadline and a small fact ceiling
    /// so no strategy can hang or build pathologically deep terms. On by
    /// default; the injected bounds never *loosen* an explicitly
    /// configured budget.
    pub termination_guard: bool,
    /// Options for the direct engine.
    pub direct: DirectOptions,
    /// Options for SLD.
    pub sld: SldOptions,
    /// Options for tabling.
    pub tabling: TablingOptions,
    /// For a persistent session, compact the write-ahead log into a
    /// snapshot automatically after this many logged loads (`None` turns
    /// periodic compaction off; [`Session::snapshot`] is always available
    /// manually). Compaction bounds both recovery replay time and log
    /// growth.
    pub snapshot_every: Option<u64>,
    /// Options for the bottom-up fixpoint (shared by the naive,
    /// semi-naive and magic strategies).
    ///
    /// Unlike the *library* default ([`FixpointOptions::default`], which
    /// is fully unbounded for programmatic callers that manage their own
    /// limits), the *session* default caps the fixpoint at 1,000,000
    /// facts and 100,000 iterations, so an unexpectedly large least model
    /// degrades into partial answers instead of consuming the machine.
    /// Set the fields to `None` to opt back into unbounded evaluation.
    pub fixpoint: FixpointOptions,
    /// Observability handle: session-level counters (loads, cache
    /// hits/misses, recovery, translation work) land in its metrics
    /// registry, engine evaluations flush their tallies into it, and its
    /// tracer (disabled by default — effectively free) receives spans for
    /// loads, recovery and every evaluation. Clone-shared with the
    /// durable log and every engine invocation.
    pub obs: Obs,
}

impl Default for SessionOptions {
    fn default() -> Self {
        SessionOptions {
            optimize_translation: true,
            auto_skolemize: true,
            budget: Budget::unlimited(),
            termination_guard: true,
            direct: DirectOptions::default(),
            sld: SldOptions::default(),
            tabling: TablingOptions::default(),
            snapshot_every: Some(64),
            fixpoint: FixpointOptions {
                max_facts: Some(1_000_000),
                max_iterations: Some(100_000),
                ..FixpointOptions::default()
            },
            obs: Obs::default(),
        }
    }
}

/// How an epoch-versioned artifact (translation, compiled program,
/// direct-engine program) was brought up to date for a query.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ArtifactProvenance {
    /// Already current for this epoch — no work done.
    Current,
    /// Extended in place from the load delta.
    Extended,
    /// Rebuilt from scratch (first use, or a delta the incremental path
    /// cannot handle — see [`Session`]'s artifact docs).
    Rebuilt,
}

impl fmt::Display for ArtifactProvenance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ArtifactProvenance::Current => "current",
            ArtifactProvenance::Extended => "extended",
            ArtifactProvenance::Rebuilt => "rebuilt",
        })
    }
}

/// How a saturated bottom-up model was obtained for a query.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ModelProvenance {
    /// A cached model current for this epoch was served as-is.
    Reused,
    /// A complete model from an earlier epoch was resumed by seeding the
    /// fixpoint with the load delta.
    Resumed,
    /// Computed from scratch.
    Computed,
}

impl fmt::Display for ModelProvenance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ModelProvenance::Reused => "reused",
            ModelProvenance::Resumed => "resumed",
            ModelProvenance::Computed => "computed",
        })
    }
}

/// Deadline injected by the termination guard when the effective budget
/// has none and the program shows skolem-function recursion.
const GUARD_DEADLINE: std::time::Duration = std::time::Duration::from_secs(2);
/// Fact/answer ceiling injected alongside [`GUARD_DEADLINE`]. Deliberately
/// small: a flagged program nests its skolem terms one level deeper per
/// derived generation, and terms beyond a few thousand levels break the
/// recursive term operations (conversion, comparison, drop) regardless of
/// how fast the machine reached them — so the structural cap, not the
/// deadline, is what actually bounds term depth.
const GUARD_MAX_FACTS: usize = 2_000;

/// Hit/miss counters of the per-strategy answer cache.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Queries answered from the cache.
    pub hits: u64,
    /// Queries that had to be evaluated.
    pub misses: u64,
}

/// Wall time of one pipeline phase inside [`Session::explain`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PhaseTiming {
    /// Phase name (`parse`, `translate`, `compile`, `model`, `evaluate`).
    pub name: &'static str,
    /// Wall time in microseconds.
    pub micros: u64,
}

/// Provenance of one artifact consulted by the profiled query.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ArtifactNote {
    /// Artifact name (`translation`, `compiled`, `direct`, `model`).
    pub artifact: &'static str,
    /// How it was brought up to date (`current` / `extended` / `rebuilt`,
    /// or `reused` / `resumed` / `computed` for models).
    pub provenance: String,
}

/// Tuples one rule produced during the profiled evaluation. What a
/// "tuple" is depends on the strategy: derived facts before dedup for the
/// bottom-up strategies, successful head unifications for SLD and the
/// direct engine, table answers for tabling. Zero-count rules are
/// omitted.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RuleTuples {
    /// The rule, rendered. For [`Strategy::Magic`] this is a rule of the
    /// *rewritten* program (magic/supplementary predicates included).
    pub rule: String,
    /// Tuples produced by that rule.
    pub tuples: u64,
}

/// The governor budget the profiled evaluation ran under, and what it
/// consumed.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BudgetUse {
    /// Wall-clock ceiling, in milliseconds, if any.
    pub deadline_ms: Option<u64>,
    /// Step ceiling, if any.
    pub max_steps: Option<u64>,
    /// Derived-fact / answer ceiling, if any.
    pub max_facts: Option<u64>,
    /// Heap ceiling in bytes, if any.
    pub max_memory_bytes: Option<u64>,
    /// True when the ceilings were injected by the termination guard
    /// (skolem-function recursion detected) rather than configured.
    pub guard_injected: bool,
    /// Wall time the evaluation phase actually spent, in microseconds.
    pub elapsed_us: u64,
}

/// What [`Session::explain`] found: an EXPLAIN-style profile of one query
/// under one strategy.
///
/// The profile is built by *evaluating the query for real* — bypassing
/// the answer cache but reporting whether it would have hit — with a
/// fresh metrics registry attached, so [`QueryProfile::metrics`] holds
/// exactly this evaluation's engine counters. Render it with
/// [`Render::render_text`] (the REPL's `:explain`) or
/// [`Render::render_json`].
#[derive(Clone, Debug)]
pub struct QueryProfile {
    /// The query, canonicalized.
    pub query: String,
    /// Strategy profiled.
    pub strategy: Strategy,
    /// Session epoch at profile time.
    pub epoch: u64,
    /// Whether [`Session::query`] would have served this from the answer
    /// cache instead of evaluating.
    pub cache_would_hit: bool,
    /// Wall time per pipeline phase, in pipeline order.
    pub phases: Vec<PhaseTiming>,
    /// Provenance of each artifact the strategy consulted.
    pub artifacts: Vec<ArtifactNote>,
    /// Per-rule tuple production (zero-count rules omitted). For a
    /// [`ModelProvenance::Reused`]/`Resumed` bottom-up model the counts
    /// are cumulative over the model's whole life, not this query alone —
    /// the `model` artifact note says which case applies.
    pub rules: Vec<RuleTuples>,
    /// Answers the evaluation produced.
    pub answers: usize,
    /// Whether the search space was fully explored.
    pub complete: bool,
    /// Why evaluation stopped early, when `complete` is false.
    pub degradation: Option<Degradation>,
    /// Budget ceilings and consumption.
    pub budget: BudgetUse,
    /// Engine metrics flushed during this evaluation only.
    pub metrics: MetricsSnapshot,
}

impl Render for QueryProfile {
    fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "EXPLAIN {} [strategy: {:?}, epoch {}]\n",
            self.query, self.strategy, self.epoch
        ));
        out.push_str(&format!(
            "  cache: {}\n",
            if self.cache_would_hit {
                "would hit (bypassed for profiling)"
            } else {
                "miss"
            }
        ));
        out.push_str("  phases:\n");
        for p in &self.phases {
            out.push_str(&format!("    {:<10} {:>8} µs\n", p.name, p.micros));
        }
        if !self.artifacts.is_empty() {
            out.push_str("  artifacts:\n");
            for a in &self.artifacts {
                out.push_str(&format!("    {:<12} {}\n", a.artifact, a.provenance));
            }
        }
        if !self.rules.is_empty() {
            out.push_str("  rules (tuples produced):\n");
            for r in &self.rules {
                out.push_str(&format!("    {:>8}  {}\n", r.tuples, r.rule));
            }
        }
        let b = &self.budget;
        let mut limits = Vec::new();
        if let Some(ms) = b.deadline_ms {
            limits.push(format!("deadline {ms} ms"));
        }
        if let Some(s) = b.max_steps {
            limits.push(format!("max steps {s}"));
        }
        if let Some(fa) = b.max_facts {
            limits.push(format!("max facts {fa}"));
        }
        if let Some(m) = b.max_memory_bytes {
            limits.push(format!("max memory {m} B"));
        }
        let limits = if limits.is_empty() {
            "unlimited".to_string()
        } else {
            limits.join(", ")
        };
        out.push_str(&format!(
            "  budget: {}{}; evaluation took {} µs\n",
            limits,
            if b.guard_injected {
                " (termination guard)"
            } else {
                ""
            },
            b.elapsed_us
        ));
        if let Some(d) = &self.degradation {
            out.push_str(&format!("  degraded: {d}\n"));
        }
        out.push_str(&format!(
            "  answers: {}{}\n",
            self.answers,
            if self.complete { " (complete)" } else { " (partial)" }
        ));
        let metrics = self.metrics.render_text();
        if !metrics.is_empty() {
            out.push_str("  metrics:\n");
            for line in metrics.lines() {
                out.push_str(&format!("    {line}\n"));
            }
        }
        out
    }

    fn render_json(&self) -> Json {
        let opt_u64 = |v: Option<u64>| v.map_or(Json::Null, Json::U64);
        Json::Object(vec![
            ("query".into(), Json::str(self.query.clone())),
            ("strategy".into(), Json::str(format!("{:?}", self.strategy))),
            ("epoch".into(), Json::U64(self.epoch)),
            ("cache_would_hit".into(), Json::Bool(self.cache_would_hit)),
            (
                "phases".into(),
                Json::Array(
                    self.phases
                        .iter()
                        .map(|p| {
                            Json::Object(vec![
                                ("name".into(), Json::str(p.name)),
                                ("micros".into(), Json::U64(p.micros)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "artifacts".into(),
                Json::Array(
                    self.artifacts
                        .iter()
                        .map(|a| {
                            Json::Object(vec![
                                ("artifact".into(), Json::str(a.artifact)),
                                ("provenance".into(), Json::str(a.provenance.clone())),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "rules".into(),
                Json::Array(
                    self.rules
                        .iter()
                        .map(|r| {
                            Json::Object(vec![
                                ("rule".into(), Json::str(r.rule.clone())),
                                ("tuples".into(), Json::U64(r.tuples)),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("answers".into(), Json::U64(self.answers as u64)),
            ("complete".into(), Json::Bool(self.complete)),
            (
                "degradation".into(),
                match &self.degradation {
                    Some(d) => d.render_json(),
                    None => Json::Null,
                },
            ),
            (
                "budget".into(),
                Json::Object(vec![
                    ("deadline_ms".into(), opt_u64(self.budget.deadline_ms)),
                    ("max_steps".into(), opt_u64(self.budget.max_steps)),
                    ("max_facts".into(), opt_u64(self.budget.max_facts)),
                    (
                        "max_memory_bytes".into(),
                        opt_u64(self.budget.max_memory_bytes),
                    ),
                    (
                        "guard_injected".into(),
                        Json::Bool(self.budget.guard_injected),
                    ),
                    ("elapsed_us".into(), Json::U64(self.budget.elapsed_us)),
                ]),
            ),
            ("metrics".into(), self.metrics.render_json()),
        ])
    }
}

/// The translated first-order program together with the state needed to
/// extend it when the next load epoch arrives.
struct TranslatedArtifact {
    /// Load epoch this artifact is current for.
    epoch: u64,
    /// Bumped on every full re-translation; dependent artifacts
    /// (compiled program, saturated models) check it to know whether
    /// they may extend in place or must start over.
    generation: u64,
    /// `subtype_decls` already reflected in the translation.
    subtypes: usize,
    /// Incremental translation state (dedup set, aux counter, axiom
    /// bookkeeping, whether the optimizer dropped clauses globally).
    state: TranslationState,
    /// Cached termination-guard verdict for `fo` — the skolem-recursion
    /// analysis is linear in the program, so it runs once per (re-)
    /// translation instead of once per query.
    may_diverge: bool,
    /// Translation counters already flushed to the metrics registry;
    /// flushing reports only the delta since this snapshot, so counters
    /// measure marginal work per load rather than re-reporting totals.
    stats_flushed: TranslationStats,
    /// `Arc`d so a published [`SessionSnapshot`] shares it for free; the
    /// writer extends it copy-on-write ([`Arc::make_mut`]), paying one
    /// clone per load only while a snapshot still pins the old value.
    fo: Arc<FoProgram>,
}

/// The indexed runtime form of the translated program.
struct CompiledArtifact {
    /// Generation of the [`TranslatedArtifact`] this was compiled from.
    generation: u64,
    /// Number of translated clauses already compiled in.
    fo_len: usize,
    /// `Arc`d for snapshot sharing; extended copy-on-write.
    cp: Arc<CompiledProgram>,
}

/// The direct engine's compiled program. Never rebuilt: deltas merge
/// into the clustered store and append clauses.
struct DirectArtifact {
    epoch: u64,
    /// C-logic clauses already compiled in.
    clauses: usize,
    /// `Arc`d for snapshot sharing; extended copy-on-write.
    dp: Arc<DirectProgram>,
}

/// A saturated (or budget-cut) bottom-up model, kept for resumption.
struct ModelArtifact {
    epoch: u64,
    /// Generation of the translation it was computed over.
    generation: u64,
    /// Compiled rules already reflected in the model.
    rules: usize,
    /// `Arc`d for snapshot sharing; resumption unwraps (or clones, when a
    /// snapshot still pins it) the saturated store to seed the fixpoint.
    ev: Arc<Evaluation>,
}

/// An immutable, epoch-stamped bundle of every artifact the shared query
/// path needs — the unit of publication of the lock-free serving design.
///
/// [`Session::prepare`] builds one from the session's (Arc-shared)
/// artifacts and publishes it into the session's [`SnapshotCell`] with a
/// single pointer swap. Readers that hold an `Arc<SessionSnapshot>` keep
/// answering against exactly the epoch they pinned, no matter how many
/// loads the writer runs concurrently: a later publish swaps the cell's
/// pointer but never mutates (or frees) a pinned snapshot. Queries
/// through a snapshot never block on the session and never clone an
/// artifact — per-query clause additions ride a [`ClauseOverlay`] and
/// conjunction-shaped negation is checked lazily against the saturated
/// model.
///
/// The snapshot also carries a **cross-strategy answer cache** for
/// serving layers ([`SessionSnapshot::query_cached`]): all six strategies
/// return identical complete answer sets (Theorem 1; enforced by
/// `tests/equivalence.rs`), so complete answers are keyed by the
/// canonical query text alone and a hit under any strategy serves every
/// other. Incomplete (budget-cut) answers are never cached, and
/// strategy-specific rejections (negation under tabling/magic) are
/// checked before the cache so a hit can never mask them.
pub struct SessionSnapshot {
    /// Load epoch this snapshot is current for.
    epoch: u64,
    /// Translation generation backing the artifacts.
    generation: u64,
    /// Cached termination-guard verdict for the translated program.
    may_diverge: bool,
    /// Breaker state of the durable storage at publish time — lets
    /// status listings report persistence health without touching the
    /// session lock.
    breaker_open: bool,
    /// Skolem-minting state after the loads this snapshot reflects.
    skolem: SkolemState,
    /// Session options frozen at publish (budget governor, engine
    /// options, observability handle).
    options: SessionOptions,
    fo: Arc<FoProgram>,
    cp: Arc<CompiledProgram>,
    dp: Arc<DirectProgram>,
    /// Saturated (or budget-cut) model for the naive fixpoint.
    naive: Arc<Evaluation>,
    /// Saturated (or budget-cut) model for the semi-naive fixpoint.
    semi: Arc<Evaluation>,
    /// Complete answers memoized by canonical query text (strategy-
    /// agnostic — see the type docs). Interior mutability keeps the
    /// snapshot shareable as a plain `Arc`.
    answers: Mutex<HashMap<String, Answers>>,
}

impl SessionSnapshot {
    /// The load epoch this snapshot was published for.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The translation generation backing this snapshot's artifacts.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Whether the session's persistence circuit breaker was open when
    /// this snapshot was published.
    pub fn breaker_open(&self) -> bool {
        self.breaker_open
    }

    /// The skolem-minting state after the loads this snapshot reflects.
    pub fn skolem(&self) -> &SkolemState {
        &self.skolem
    }

    /// Number of answers currently memoized in the snapshot's cache.
    pub fn cached_answers(&self) -> usize {
        self.lock_answers().len()
    }

    fn lock_answers(&self) -> std::sync::MutexGuard<'_, HashMap<String, Answers>> {
        // The lock only guards map operations (no user code runs under
        // it), so a poisoned guard is still structurally sound.
        self.answers.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// The effective budget for one engine invocation: the engine budget
    /// tightened by the frozen session budget and the caller's `extra`,
    /// then bounded by the termination guard.
    fn effective(&self, engine_budget: &Budget, extra: &Budget) -> Budget {
        let mut b = engine_budget.merged(&self.options.budget).merged(extra);
        if self.options.termination_guard && self.may_diverge {
            if b.deadline.is_none() {
                b.deadline = Some(GUARD_DEADLINE);
            }
            if b.max_facts.is_none() {
                b.max_facts = Some(GUARD_MAX_FACTS);
            }
        }
        b
    }

    /// Parses and answers a query against this snapshot's pinned epoch.
    /// See [`SessionSnapshot::query_ast`].
    pub fn query(
        &self,
        src: &str,
        strategy: Strategy,
        extra: &Budget,
    ) -> Result<Answers, SessionError> {
        let q = parse_query(src)?;
        self.query_ast(&q, strategy, extra)
    }

    /// Answers an already-parsed query against the snapshot's artifacts.
    ///
    /// Never blocks on the session, never mutates or clones an artifact:
    /// per-query auxiliary clauses (conjunction-shaped negated goals)
    /// extend the compiled program through a [`ClauseOverlay`] view, and
    /// against a *complete* saturated model they are checked lazily
    /// instead of resuming the fixpoint. `extra` is merged (tighter
    /// ceiling wins) into the effective budget — the seam for
    /// per-request deadlines and cancellation.
    pub fn query_ast(
        &self,
        q: &Query,
        strategy: Strategy,
        extra: &Budget,
    ) -> Result<Answers, SessionError> {
        match strategy {
            Strategy::Direct => {
                let mut opts = self.options.direct.clone();
                opts.budget = self.effective(&opts.budget, extra);
                opts.obs = self.options.obs.clone();
                let r = DirectEngine::new(&self.dp, opts).solve(q)?;
                Ok(Answers {
                    rows: r
                        .answers
                        .into_iter()
                        .map(|bindings| AnswerRow { bindings })
                        .collect(),
                    complete: r.complete,
                    degradation: r.degradation,
                })
            }
            Strategy::Sld => {
                let tr = Transformer::new();
                let mut aux = Vec::new();
                let mut counter = 0;
                let (goals, neg_goals) = tr.query_parts(q, &mut aux, &mut counter);
                let mut opts = self.options.sld.clone();
                opts.budget = self.effective(&opts.budget, extra);
                opts.obs = self.options.obs.clone();
                let r = if aux.is_empty() {
                    SldEngine::new(&*self.cp, opts).solve_with_negation(&goals, &neg_goals)?
                } else {
                    // Conjunction-shaped negated goals need their
                    // auxiliary clauses in the program: a COW overlay
                    // extends the shared artifact without cloning it.
                    let mut view = ClauseOverlay::new(&*self.cp);
                    for c in &aux {
                        view.push_clause(c);
                    }
                    SldEngine::new(&view, opts).solve_with_negation(&goals, &neg_goals)?
                };
                Ok(Answers {
                    rows: r
                        .answers
                        .into_iter()
                        .map(|bindings| AnswerRow { bindings })
                        .collect(),
                    complete: r.complete,
                    degradation: r.degradation,
                })
            }
            Strategy::BottomUpNaive | Strategy::BottomUpSemiNaive => {
                let tr = Transformer::new();
                let mut aux = Vec::new();
                let mut counter = 0;
                let (goals, neg_goals) = tr.query_parts(q, &mut aux, &mut counter);
                let (fs, m) = if strategy == Strategy::BottomUpNaive {
                    (FixpointStrategy::Naive, &self.naive)
                } else {
                    (FixpointStrategy::SemiNaive, &self.semi)
                };
                if aux.is_empty() {
                    Ok(Answers {
                        rows: m
                            .query_with_negation(&goals, &neg_goals)?
                            .into_iter()
                            .map(|bindings| AnswerRow {
                                bindings: bindings.into_iter().collect(),
                            })
                            .collect(),
                        complete: m.complete,
                        degradation: m.degradation.clone(),
                    })
                } else if m.complete {
                    // Against a complete model the query-local `__naux…`
                    // clauses are checked lazily per candidate answer —
                    // exact for the translation's aux clauses, and no
                    // model clone or fixpoint resumption.
                    Ok(Answers {
                        rows: m
                            .query_with_negation_aux(&goals, &neg_goals, &aux)?
                            .into_iter()
                            .map(|bindings| AnswerRow {
                                bindings: bindings.into_iter().collect(),
                            })
                            .collect(),
                        complete: m.complete,
                        degradation: m.degradation.clone(),
                    })
                } else {
                    // A budget-cut model cannot be resumed; re-evaluate
                    // over an overlay carrying the aux clauses.
                    let mut opts = FixpointOptions {
                        strategy: fs,
                        ..self.options.fixpoint.clone()
                    };
                    opts.budget = self.effective(&opts.budget, extra);
                    opts.obs = self.options.obs.clone();
                    let mut view = ClauseOverlay::new(&*self.cp);
                    for c in &aux {
                        view.push_clause(c);
                    }
                    let ev = folog::evaluate(&view, opts)?;
                    Ok(Answers {
                        rows: ev
                            .query_with_negation(&goals, &neg_goals)?
                            .into_iter()
                            .map(|bindings| AnswerRow {
                                bindings: bindings.into_iter().collect(),
                            })
                            .collect(),
                        complete: ev.complete,
                        degradation: ev.degradation,
                    })
                }
            }
            Strategy::Tabled => {
                if q.has_negation() {
                    return Err(SessionError::Unsupported(
                        "tabled evaluation does not support negation".into(),
                    ));
                }
                let goals = Transformer::new().query(q);
                let mut opts = self.options.tabling.clone();
                opts.budget = self.effective(&opts.budget, extra);
                opts.obs = self.options.obs.clone();
                let r = TabledEngine::new(&*self.cp, opts).solve(&goals)?;
                Ok(Answers {
                    rows: r
                        .answers
                        .into_iter()
                        .map(|bindings| AnswerRow { bindings })
                        .collect(),
                    complete: r.complete,
                    degradation: r.degradation,
                })
            }
            Strategy::Magic => {
                if q.has_negation() {
                    return Err(SessionError::Unsupported(
                        "magic sets do not support negation".into(),
                    ));
                }
                let goals = Transformer::new().query(q);
                let mut opts = self.options.fixpoint.clone();
                opts.budget = self.effective(&opts.budget, extra);
                opts.obs = self.options.obs.clone();
                let builtins = builtin_symbols().collect();
                let (answers, ev) = solve_magic(&self.fo, &goals, &builtins, opts)?;
                Ok(Answers {
                    rows: answers
                        .into_iter()
                        .map(|bindings| AnswerRow {
                            bindings: bindings.into_iter().collect(),
                        })
                        .collect(),
                    complete: ev.complete,
                    degradation: ev.degradation,
                })
            }
        }
    }

    /// [`SessionSnapshot::query`] through the snapshot's cross-strategy
    /// answer cache; the returned flag is `true` on a cache hit.
    ///
    /// Only **complete** answer sets are cached (all six strategies
    /// return identical complete answers, so the key is the canonical
    /// query text alone). Strategy-specific rejections run before the
    /// lookup, and incomplete (budget-cut) answers are recomputed on
    /// every ask.
    pub fn query_cached(
        &self,
        src: &str,
        strategy: Strategy,
        extra: &Budget,
    ) -> Result<(Answers, bool), SessionError> {
        let q = parse_query(src)?;
        if matches!(strategy, Strategy::Tabled | Strategy::Magic) && q.has_negation() {
            // Fall through to the honest rejection; a cached answer from
            // another strategy must not mask it.
            return self.query_ast(&q, strategy, extra).map(|a| (a, false));
        }
        let key = q.to_string();
        if let Some(hit) = self.lock_answers().get(&key) {
            return Ok((hit.clone(), true));
        }
        let a = self.query_ast(&q, strategy, extra)?;
        if a.complete {
            self.lock_answers().insert(key, a.clone());
        }
        Ok((a, false))
    }
}

/// The publication point of [`SessionSnapshot`]s: one slot, swapped
/// atomically (a mutex held only for the pointer swap — never across
/// evaluation), shared by the owning [`Session`] and any number of
/// serving threads.
///
/// Readers [`load`](SnapshotCell::load) the current snapshot and then
/// work entirely against their pinned `Arc` — the read path never blocks
/// on loads, and a snapshot outlives both later publishes and the
/// session itself (eviction of a session does not invalidate answers
/// in flight).
#[derive(Default)]
pub struct SnapshotCell {
    latest: Mutex<Option<Arc<SessionSnapshot>>>,
}

impl SnapshotCell {
    /// The most recently published snapshot, if any.
    pub fn load(&self) -> Option<Arc<SessionSnapshot>> {
        self.latest.lock().unwrap_or_else(|e| e.into_inner()).clone()
    }

    /// Swaps in a new snapshot; readers pin whichever pointer they
    /// already loaded.
    fn publish(&self, snap: Arc<SessionSnapshot>) {
        *self.latest.lock().unwrap_or_else(|e| e.into_inner()) = Some(snap);
    }
}

/// A loaded C-logic program plus every compiled artefact needed by the
/// strategies.
///
/// Artefacts are built lazily, cached, and — this is the serving-workload
/// design — *extended* rather than rebuilt when more program text is
/// loaded. Each [`Session::load`] bumps the session **epoch**; every
/// artifact records the epoch it is current for and, on first use after a
/// load, catches up from the delta alone: the translator appends the new
/// clauses' translation (falling back to a full re-translation only in
/// the documented cases, see `Optimizer::extend_optimized`), the compiled
/// program indexes the new clauses in place, the direct engine merges new
/// ground facts into its clustered store, and saturated bottom-up models
/// are resumed by seeding the fixpoint with the delta instead of starting
/// from nothing. Ground answers are additionally memoized per
/// `(epoch, strategy, query)` — see [`Session::cache_stats`].
#[derive(Default)]
pub struct Session {
    options: SessionOptions,
    program: Program,
    skolem_reports: Vec<SkolemReport>,
    /// Skolem numbering state threaded across loads so `skN` identities
    /// are stable under cumulative loading.
    skolem_counter: usize,
    /// Bumped on every load.
    epoch: u64,
    // epoch-versioned artifacts
    translated: Option<TranslatedArtifact>,
    compiled_fo: Option<CompiledArtifact>,
    direct: Option<DirectArtifact>,
    models: HashMap<FixpointStrategy, ModelArtifact>,
    answer_cache: HashMap<(u64, Strategy, String), Answers>,
    cache_stats: CacheStats,
    /// Durable snapshot + WAL storage, when the session is persistent.
    durable: Option<DurableLog>,
    /// Loads appended to the WAL since the last compaction.
    loads_since_snapshot: u64,
    /// The highest epoch known to be safely in the durable store. Trails
    /// [`Session::epoch`] exactly when a persistence failure left the
    /// in-memory state ahead of the log — the condition that makes
    /// evicting the session unsafe (see [`Session::fully_persisted`]).
    durable_epoch: u64,
    /// Publication point for immutable [`SessionSnapshot`]s. Shared
    /// (via [`Session::snapshot_cell`]) with serving layers, which read
    /// it without ever taking the session lock.
    snapshots: Arc<SnapshotCell>,
}

impl Session {
    /// An empty session with default options.
    pub fn new() -> Session {
        Session::default()
    }

    /// An empty session with explicit options.
    pub fn with_options(options: SessionOptions) -> Session {
        Session {
            options,
            ..Session::default()
        }
    }

    /// Opens (or initializes) a **persistent** session backed by a
    /// snapshot + write-ahead-log store at `path` (a directory), with
    /// default options. Existing state is recovered through the normal
    /// incremental load pipeline; every subsequent successful
    /// [`Session::load`] is logged durably before it returns. The
    /// [`RecoveryReport`] says what was found on disk (and is
    /// [clean](RecoveryReport::is_clean) for a fresh directory).
    pub fn persistent(path: impl AsRef<std::path::Path>) -> Result<(Session, RecoveryReport), SessionError> {
        Session::persistent_with_options(path, SessionOptions::default())
    }

    /// [`Session::persistent`] with explicit options.
    pub fn persistent_with_options(
        path: impl AsRef<std::path::Path>,
        options: SessionOptions,
    ) -> Result<(Session, RecoveryReport), SessionError> {
        let storage = FileStorage::create(path)?;
        Session::recover_from(Box::new(storage), options)
    }

    /// Recovers a session from an **existing** store at `path`, with
    /// default options. Unlike [`Session::persistent`] this refuses a
    /// path holding no durable state, so a typo can't silently start an
    /// empty session.
    pub fn recover(path: impl AsRef<std::path::Path>) -> Result<(Session, RecoveryReport), SessionError> {
        let path = path.as_ref();
        let has_state =
            path.join(SNAPSHOT_FILE).exists() || path.join(WAL_FILE).exists();
        if !has_state {
            return Err(SessionError::Store(StoreError::new(
                "recover",
                &path.display().to_string(),
                "no durable session state found (expected wal.log or snapshot.clg)",
            )));
        }
        Session::persistent_with_options(path, SessionOptions::default())
    }

    /// Recovers a session from any [`Storage`] implementation — the
    /// injection point for the fault harness.
    ///
    /// The protocol: restore the snapshot (if any), then replay every
    /// structurally valid WAL record through the ordinary epoch-versioned
    /// load pipeline, skipping records whose epoch the snapshot already
    /// covers (left behind by an interrupted compaction). Torn or corrupt
    /// tails were already dropped by the framing scan; a CRC-valid record
    /// whose *content* fails to parse stops replay there and truncates
    /// the log at that record so future appends stay consistent. A
    /// corrupt snapshot with surviving WAL records is refused outright —
    /// replaying them onto the wrong base would fork history.
    pub fn recover_from(
        storage: Box<dyn Storage>,
        options: SessionOptions,
    ) -> Result<(Session, RecoveryReport), SessionError> {
        let obs = options.obs.clone();
        let mut span = obs.tracer.span("session.recover");
        let opened = DurableLog::open_with(storage, obs.clone())?;
        let mut report = opened.report;
        let mut log = opened.log;
        let mut session = Session::with_options(options);

        let snapshot_corrupt = report.corruption.iter().any(|c| c.file == SNAPSHOT_FILE);
        match opened.snapshot {
            Some(snap) => {
                if let Err(message) = session.restore_snapshot(&snap) {
                    if !opened.records.is_empty() {
                        return Err(SessionError::Store(StoreError::new(
                            "recover",
                            SNAPSHOT_FILE,
                            format!("{message}; refusing to replay the log onto the wrong base"),
                        )));
                    }
                    report.issues.push(RecoveryIssue::SnapshotUnusable { message });
                }
            }
            None if snapshot_corrupt && !opened.records.is_empty() => {
                return Err(SessionError::Store(StoreError::new(
                    "recover",
                    SNAPSHOT_FILE,
                    "snapshot is corrupt but WAL records survive; refusing to replay onto the wrong base",
                )));
            }
            None => {}
        }

        let mut kept: u64 = 0;
        for sr in &opened.records {
            if sr.record.epoch <= session.epoch {
                report.records_skipped += 1;
                kept += 1;
                continue;
            }
            match session.replay_record(&sr.record, &mut report) {
                Ok(()) => {
                    report.records_replayed += 1;
                    match sr.record.op {
                        WalOp::Load => report.loads_replayed += 1,
                        WalOp::Retract => report.retracts_replayed += 1,
                    }
                    kept += 1;
                }
                Err(e) => {
                    report.issues.push(RecoveryIssue::RecordUnusable {
                        epoch: sr.record.epoch,
                        message: e.to_string(),
                    });
                    log.truncate_wal(sr.offset)?;
                    report.wal_truncated_to = Some(sr.offset);
                    break;
                }
            }
        }
        report.recovered_epoch = session.epoch;
        session.durable = Some(log);
        session.loads_since_snapshot = kept;
        // Everything the session now holds came *from* the store.
        session.durable_epoch = session.epoch;
        let m = &obs.metrics;
        m.counter("session.recovery.runs").inc();
        m.counter("session.recovery.records_replayed")
            .add(report.records_replayed as u64);
        m.counter("session.recovery.records_skipped")
            .add(report.records_skipped as u64);
        m.counter("session.recovery.issues")
            .add(report.issues.len() as u64);
        span.record("epoch", report.recovered_epoch);
        span.record("replayed", report.records_replayed as u64);
        span.record("clean", u64::from(report.is_clean()));
        Ok((session, report))
    }

    /// Attaches durable storage at `path` to this session, **discarding**
    /// any store already there: the current state is written as a fresh
    /// snapshot and subsequent loads are logged. Save-as semantics.
    pub fn save(&mut self, path: impl AsRef<std::path::Path>) -> Result<(), SessionError> {
        let storage = FileStorage::create(path)?;
        let mut log = DurableLog::create(Box::new(storage))?;
        log.set_obs(self.options.obs.clone());
        log.compact(&self.snapshot_record())?;
        self.durable = Some(log);
        self.loads_since_snapshot = 0;
        self.durable_epoch = self.epoch;
        Ok(())
    }

    /// Compacts the write-ahead log into a single snapshot file (tmp
    /// write + fsync + atomic rename). Errors if the session is not
    /// persistent.
    pub fn snapshot(&mut self) -> Result<(), SessionError> {
        let snap = self.snapshot_record();
        let Some(log) = self.durable.as_mut() else {
            return Err(SessionError::Store(StoreError::new(
                "snapshot",
                SNAPSHOT_FILE,
                "session has no durable storage; open it with Session::persistent or save it first",
            )));
        };
        log.compact(&snap)?;
        self.loads_since_snapshot = 0;
        self.durable_epoch = self.epoch;
        Ok(())
    }

    /// Whether loads are being logged durably.
    pub fn is_persistent(&self) -> bool {
        self.durable.is_some()
    }

    /// The highest epoch known to be safely in the durable store: 0 until
    /// something is persisted, equal to [`Session::epoch`] while every
    /// load has reached the log, and trailing it after a persistence
    /// failure (the session is ahead of its own history).
    pub fn durable_epoch(&self) -> u64 {
        self.durable_epoch
    }

    /// True when this session can be dropped from memory and later
    /// rebuilt from its store with nothing lost: it is persistent and the
    /// durable log covers the current epoch. This is the eviction-safety
    /// predicate the multi-tenant `SessionManager` checks — a session
    /// whose in-memory state is ahead of its log (mid-outage, breaker
    /// open) must be kept resident or its unlogged loads would vanish.
    pub fn fully_persisted(&self) -> bool {
        self.durable.is_some() && self.durable_epoch == self.epoch
    }

    /// The skolem-minting state after the loads so far: the next `skN`
    /// counter plus the function symbols it must avoid. Logged with every
    /// record so recovery can verify identity stability.
    pub fn skolem_state(&self) -> SkolemState {
        SkolemState {
            counter: self.skolem_counter,
            taken: self.program.signature().functions,
        }
    }

    fn snapshot_record(&self) -> SnapshotRecord {
        SnapshotRecord {
            epoch: self.epoch,
            skolem: self.skolem_state(),
            program: self.program.to_string(),
        }
    }

    /// Restores snapshot state directly — the snapshot text is the
    /// already-skolemized program, so it bypasses [`Session::load_program`]
    /// (no re-skolemization, no epoch bump). Returns a message rather
    /// than an error so the caller decides whether an unusable snapshot
    /// is fatal.
    fn restore_snapshot(&mut self, snap: &SnapshotRecord) -> Result<(), String> {
        let parsed = parse_source(&snap.program).map_err(|e| e.to_string())?;
        if !parsed.queries.is_empty() {
            return Err("snapshot contains queries".to_string());
        }
        self.program = parsed.program;
        self.epoch = snap.epoch;
        self.skolem_counter = snap.skolem.counter;
        Ok(())
    }

    /// Replays one WAL record through the normal load path, then checks
    /// the epoch and skolem counter against what the record logged.
    /// Drift means the replayed environment differs from the one that
    /// wrote the log (it should be impossible within one version); the
    /// recorded values win, because they are what later records' object
    /// identities were minted against.
    fn replay_record(
        &mut self,
        rec: &LoadRecord,
        report: &mut RecoveryReport,
    ) -> Result<(), SessionError> {
        match rec.op {
            WalOp::Load => {
                let parsed = parse_source(&rec.source)?;
                if !parsed.queries.is_empty() {
                    return Err(SessionError::Parse(
                        ParseError {
                            message: "logged source contains queries".into(),
                            line: 0,
                            col: 0,
                        }
                        .into(),
                    ));
                }
                self.load_program(parsed.program);
            }
            WalOp::Retract => self.retract_program(&rec.source)?,
        }
        if self.epoch != rec.epoch {
            report.issues.push(RecoveryIssue::EpochDrift {
                replayed: self.epoch,
                recorded: rec.epoch,
            });
            self.epoch = rec.epoch;
        }
        if self.skolem_counter != rec.skolem.counter {
            report.issues.push(RecoveryIssue::SkolemDrift {
                replayed: self.skolem_counter as u64,
                recorded: rec.skolem.counter as u64,
            });
            self.skolem_counter = rec.skolem.counter;
        }
        Ok(())
    }

    /// Logs a successful load durably; called after the in-memory state
    /// has advanced. On storage failure the in-memory session is ahead of
    /// the log — the error tells the caller to treat the session as
    /// crashed and recover from the store.
    fn persist_load(&mut self, src: &str) -> Result<(), SessionError> {
        self.persist_record(WalOp::Load, src)
    }

    /// Logs one durable mutation (load or retract) — see
    /// [`Session::persist_load`]'s contract, which both kinds share.
    fn persist_record(&mut self, op: WalOp, src: &str) -> Result<(), SessionError> {
        let rec = LoadRecord {
            op,
            epoch: self.epoch,
            skolem: self.skolem_state(),
            source: src.to_string(),
        };
        if self.durable.is_none() {
            return Ok(());
        }
        if self.durable_epoch + 1 != self.epoch {
            // A previous load never reached the log (persistence failed
            // mid-outage), so appending this record alone would leave a
            // gap replay cannot bridge — recovery would silently skip
            // the missing loads. Heal by full compaction instead: the
            // snapshot carries the complete current program, gap
            // included.
            return self.snapshot();
        }
        let log = self.durable.as_mut().expect("checked above");
        log.append(&rec)?;
        self.durable_epoch = self.epoch;
        self.loads_since_snapshot += 1;
        if let Some(every) = self.options.snapshot_every {
            if every > 0 && self.loads_since_snapshot >= every {
                self.snapshot()?;
            }
        }
        Ok(())
    }

    /// Parses and loads more program text (cumulative). Queries embedded
    /// in the source are rejected — use [`Session::query`]. In a
    /// persistent session the load is appended to the write-ahead log
    /// (and periodically compacted into a snapshot) before returning.
    pub fn load(&mut self, src: &str) -> Result<(), SessionError> {
        let parsed = parse_source(src)?;
        if !parsed.queries.is_empty() {
            return Err(SessionError::Parse(
                ParseError {
                    message: "queries are not allowed in loaded sources; use Session::query".into(),
                    line: 0,
                    col: 0,
                }
                .into(),
            ));
        }
        self.load_program(parsed.program);
        self.persist_load(src)
    }

    /// Loads an already-built program (cumulative). Bumps the session
    /// epoch; compiled artefacts catch up incrementally on next use.
    pub fn load_program(&mut self, mut p: Program) {
        let mut span = self
            .options
            .obs
            .tracer
            .span_with("session.load", vec![("clauses", p.clauses.len().into())]);
        let skolems_before = self.skolem_counter;
        if self.options.auto_skolemize {
            let taken = self.program.signature().functions;
            let (sk, reports) = auto_skolemize_from(&p, &mut self.skolem_counter, &taken);
            p = sk;
            let offset = self.program.clauses.len();
            self.skolem_reports.extend(reports.into_iter().map(|mut r| {
                r.clause_index += offset;
                r
            }));
        }
        self.program.subtype_decls.extend(p.subtype_decls);
        self.program.clauses.extend(p.clauses);
        self.epoch += 1;
        // Prior-epoch answers can never be served again (the cache key
        // includes the epoch), so drop them.
        self.answer_cache.clear();
        let m = &self.options.obs.metrics;
        m.counter("session.loads").inc();
        m.gauge("session.epoch").set(self.epoch);
        m.gauge("session.program_clauses")
            .set(self.program.clauses.len() as u64);
        let minted = (self.skolem_counter - skolems_before) as u64;
        if minted > 0 {
            m.counter("session.skolems_minted").add(minted);
        }
        span.record("epoch", self.epoch);
        span.record("skolems_minted", minted);
    }

    /// Retracts previously loaded clauses (facts or rules) and repairs
    /// every cached artefact **incrementally** where possible.
    ///
    /// The source is parsed like a load, and each clause must match a
    /// loaded clause textually *after* skolemization — retracting a
    /// skolemized fact means quoting it the way [`Session::program`]
    /// renders it (e.g. `person: sk1[...]`), so object identities are
    /// never re-minted or guessed. Queries and subtype declarations are
    /// rejected; a clause with no match fails the whole call with
    /// [`SessionError::NoSuchClause`] and retracts nothing.
    ///
    /// Saturated bottom-up models are patched with a DRed
    /// delete-rederive pass ([`folog::retract_facts`]) when the
    /// retraction only removes ground base facts at the first-order
    /// level; if the translated rule set itself changed (the optimizer's
    /// global analyses may re-fire) or a model was budget-cut, the
    /// affected models are dropped and recomputed lazily instead. The
    /// direct engine's clustered store is append-only, so it is always
    /// rebuilt lazily. In a persistent session the retraction is
    /// appended to the write-ahead log (as a
    /// [`WalOp::Retract`](clogic_store::WalOp) record) before returning,
    /// under the same gap-healing contract as [`Session::load`].
    pub fn retract(&mut self, src: &str) -> Result<(), SessionError> {
        self.retract_program(src)?;
        self.persist_record(WalOp::Retract, src)
    }

    /// The in-memory half of [`Session::retract`] — also the replay
    /// target for [`WalOp::Retract`] records during recovery.
    fn retract_program(&mut self, src: &str) -> Result<(), SessionError> {
        let parsed = parse_source(src)?;
        if !parsed.queries.is_empty() {
            return Err(SessionError::Parse(
                ParseError {
                    message: "queries are not allowed in retracted sources".into(),
                    line: 0,
                    col: 0,
                }
                .into(),
            ));
        }
        if !parsed.program.subtype_decls.is_empty() {
            return Err(SessionError::Unsupported(
                "subtype declarations cannot be retracted; the hierarchy only grows".into(),
            ));
        }
        if parsed.program.clauses.is_empty() {
            return Err(SessionError::NoSuchClause("(empty source)".into()));
        }
        let mut span = self.options.obs.tracer.span_with(
            "session.retract",
            vec![("clauses", parsed.program.clauses.len().into())],
        );

        // Resolve every clause before mutating anything: all-or-nothing.
        let mut doomed: Vec<usize> = Vec::new();
        for c in &parsed.program.clauses {
            let want = c.to_string();
            let hit = self
                .program
                .clauses
                .iter()
                .enumerate()
                .find(|(i, have)| !doomed.contains(i) && have.to_string() == want)
                .map(|(i, _)| i);
            match hit {
                Some(i) => doomed.push(i),
                None => return Err(SessionError::NoSuchClause(want.trim_end().to_string())),
            }
        }

        // Snapshot the old artifacts for the incremental repair below.
        let prev_translated = self.translated.take();
        let prev_models = std::mem::take(&mut self.models);

        doomed.sort_unstable();
        for &i in doomed.iter().rev() {
            self.program.clauses.remove(i);
        }
        self.epoch += 1;
        self.answer_cache.clear();
        // The clustered store's indexes are append-only; rebuild lazily.
        self.direct = None;

        // Full re-translation. The generation must move *past* the old
        // one — a fresh build restarts numbering at 0, which could
        // collide with a stale artifact's generation and let
        // `ensure_model` resume a model whose basis silently changed.
        self.ensure_translated();
        let old_gen = prev_translated.as_ref().map_or(0, |t| t.generation);
        let new_gen = old_gen + 1;
        self.translated.as_mut().expect("ensured").generation = new_gen;
        self.compiled_fo = None;
        self.ensure_compiled();

        // Diff the first-order programs. When only ground unit facts
        // disappeared (the common case), every complete saturated model
        // is repaired by a DRed delete-rederive pass over exactly those
        // facts instead of a fixpoint from scratch.
        let diff = prev_translated.as_ref().and_then(|t| {
            fo_unit_diff(&t.fo, &self.translated.as_ref().expect("ensured").fo)
        });
        let cp = Arc::clone(&self.compiled_fo.as_ref().expect("ensured").cp);
        let rules = cp.rules.len();
        let mut patched = 0u64;
        let mut dropped = 0u64;
        if let Some((removed, added)) = diff {
            for (fs, art) in prev_models {
                if art.generation != old_gen || !art.ev.complete {
                    dropped += 1;
                    continue;
                }
                let opts = FixpointOptions {
                    strategy: fs,
                    obs: self.options.obs.clone(),
                    ..self.options.fixpoint.clone()
                };
                // COW: reclaim the saturated store when this session
                // holds the only reference; clone only while a published
                // snapshot still pins the pre-retraction model (which
                // keeps serving its own epoch untorn).
                let seed = Arc::try_unwrap(art.ev).unwrap_or_else(|a| (*a).clone());
                match folog::retract_facts(cp.as_ref(), seed, &removed, &added, opts) {
                    Ok((ev, _stats)) => {
                        self.models.insert(
                            fs,
                            ModelArtifact {
                                epoch: self.epoch,
                                generation: new_gen,
                                rules,
                                ev: Arc::new(ev),
                            },
                        );
                        patched += 1;
                    }
                    Err(_) => dropped += 1,
                }
            }
        } else {
            dropped += prev_models.len() as u64;
        }

        let m = &self.options.obs.metrics;
        m.counter("session.retracts").inc();
        m.counter("session.retract.clauses").add(doomed.len() as u64);
        if patched > 0 {
            m.counter("session.retract.models_patched").add(patched);
        }
        if dropped > 0 {
            m.counter("session.retract.models_dropped").add(dropped);
        }
        m.gauge("session.epoch").set(self.epoch);
        m.gauge("session.program_clauses")
            .set(self.program.clauses.len() as u64);
        span.record("epoch", self.epoch);
        span.record("models_patched", patched);
        span.record("models_dropped", dropped);
        Ok(())
    }

    /// The loaded program (after skolemization).
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// What was skolemized on load.
    pub fn skolem_reports(&self) -> &[SkolemReport] {
        &self.skolem_reports
    }

    /// The current load epoch: 0 for an empty session, bumped by every
    /// [`Session::load`] / [`Session::load_program`].
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Answer-cache hit/miss counters (cumulative over the session).
    pub fn cache_stats(&self) -> CacheStats {
        self.cache_stats
    }

    /// The session's observability handle (configure it via
    /// [`SessionOptions::obs`]).
    pub fn obs(&self) -> &Obs {
        &self.options.obs
    }

    /// A snapshot of every metric the session and its engines have
    /// recorded (the REPL's `:metrics`).
    pub fn metrics(&self) -> MetricsSnapshot {
        self.options.obs.metrics.snapshot()
    }

    /// Fixpoint statistics of the cached bottom-up model for a strategy,
    /// if one has been computed. A model resumed across epochs keeps
    /// accumulating into the same counters.
    pub fn model_stats(&self, strategy: Strategy) -> Option<&FixpointStats> {
        let fs = match strategy {
            Strategy::BottomUpNaive => FixpointStrategy::Naive,
            Strategy::BottomUpSemiNaive => FixpointStrategy::SemiNaive,
            _ => return None,
        };
        self.models.get(&fs).map(|m| &m.ev.stats)
    }

    /// Brings the translated program up to the current epoch.
    ///
    /// Three outcomes: already current (no work); *extendable* — the
    /// delta's translation is appended to the cached program, reusing the
    /// incremental [`TranslationState`]; or a full re-translation, which
    /// bumps the artifact generation so downstream artefacts (compiled
    /// program, saturated models) know their basis changed.
    ///
    /// With the §4 optimizer off, translation is clause-local and the
    /// delta path is always sound (new subtype declarations only append
    /// inclusion axioms). With the optimizer on, we fall back to a full
    /// re-translation when the delta adds subtype declarations (rules 1–2
    /// consult the hierarchy, so earlier clauses' optimizations may be
    /// invalidated), when the previous build's dead-clause elimination
    /// actually dropped clauses (a global analysis the delta may
    /// re-legitimize), or when the cumulative program uses negation.
    fn ensure_translated(&mut self) -> ArtifactProvenance {
        let plan = match &self.translated {
            None => ArtifactProvenance::Rebuilt,
            Some(t) if t.epoch == self.epoch => ArtifactProvenance::Current,
            Some(t) => {
                let extendable = if self.options.optimize_translation {
                    self.program.subtype_decls.len() == t.subtypes
                        && !t.state.dropped_clauses
                        && self.program.clauses.iter().all(|c| c.neg_body.is_empty())
                } else {
                    true
                };
                if extendable {
                    ArtifactProvenance::Extended
                } else {
                    ArtifactProvenance::Rebuilt
                }
            }
        };
        let tr = Transformer::new();
        match plan {
            ArtifactProvenance::Current => return plan,
            ArtifactProvenance::Extended => {
                let t = self.translated.as_mut().expect("extend plan");
                // COW: clones the program only while a published
                // snapshot still pins the previous value.
                let fo = Arc::make_mut(&mut t.fo);
                if self.options.optimize_translation {
                    Optimizer::new(&self.program).extend_optimized(
                        &tr,
                        &self.program,
                        fo,
                        &mut t.state,
                    );
                } else {
                    tr.extend_program(&self.program, fo, &mut t.state);
                }
                t.epoch = self.epoch;
                t.subtypes = self.program.subtype_decls.len();
                t.may_diverge = clogic_core::termination::may_diverge(&t.fo);
            }
            ArtifactProvenance::Rebuilt => {
                let generation = self.translated.as_ref().map_or(0, |t| t.generation + 1);
                let (fo, state) = if self.options.optimize_translation {
                    Optimizer::new(&self.program).optimized_program_with_state(&tr, &self.program)
                } else {
                    tr.program_with_state(&self.program)
                };
                self.translated = Some(TranslatedArtifact {
                    epoch: self.epoch,
                    generation,
                    subtypes: self.program.subtype_decls.len(),
                    state,
                    may_diverge: clogic_core::termination::may_diverge(&fo),
                    stats_flushed: TranslationStats::default(),
                    fo: Arc::new(fo),
                });
            }
        }
        self.flush_translation_metrics();
        plan
    }

    /// Flushes the translation counters accumulated since the last flush
    /// into the metrics registry (`core.translate.*` / `core.optimize.*`).
    /// clogic-core stays dependency-free, so the session does the flush.
    fn flush_translation_metrics(&mut self) {
        let t = self.translated.as_mut().expect("ensured");
        let cur = t.state.stats.clone();
        let prev = &t.stats_flushed;
        let m = &self.options.obs.metrics;
        let flush = |name: &str, now: u64, before: u64| {
            let delta = now.saturating_sub(before);
            if delta > 0 {
                m.counter(name).add(delta);
            }
        };
        flush(
            "core.translate.clauses_transformed",
            cur.clauses_transformed,
            prev.clauses_transformed,
        );
        flush(
            "core.translate.clauses_emitted",
            cur.clauses_emitted,
            prev.clauses_emitted,
        );
        flush(
            "core.translate.duplicates_suppressed",
            cur.duplicates_suppressed,
            prev.duplicates_suppressed,
        );
        flush(
            "core.translate.type_axioms",
            cur.type_axioms_emitted,
            prev.type_axioms_emitted,
        );
        flush(
            "core.translate.aux_clauses",
            cur.aux_clauses,
            prev.aux_clauses,
        );
        flush(
            "core.optimize.rule1_deletions",
            cur.rule1_deletions,
            prev.rule1_deletions,
        );
        flush(
            "core.optimize.rule2_deletions",
            cur.rule2_deletions,
            prev.rule2_deletions,
        );
        flush(
            "core.optimize.rule3_object_prunes",
            cur.rule3_object_prunes,
            prev.rule3_object_prunes,
        );
        flush(
            "core.optimize.clauses_subsumed",
            cur.clauses_subsumed,
            prev.clauses_subsumed,
        );
        flush(
            "core.optimize.dead_clauses_removed",
            cur.dead_clauses_removed,
            prev.dead_clauses_removed,
        );
        t.stats_flushed = cur;
    }

    /// The translated first-order program (Theorem 1), optimized per the
    /// session options. Cached and extended across epochs.
    pub fn translated(&mut self) -> &FoProgram {
        self.ensure_translated();
        &self.translated.as_ref().expect("ensured").fo
    }

    /// Brings the compiled first-order program up to date: recompiled
    /// from scratch only when the translation's generation changed,
    /// otherwise new translated clauses are pushed into the existing
    /// indexes.
    fn ensure_compiled(&mut self) -> ArtifactProvenance {
        self.ensure_translated();
        let t = self.translated.as_ref().expect("ensured");
        let m = &self.options.obs.metrics;
        match &mut self.compiled_fo {
            Some(c) if c.generation == t.generation => {
                let from = c.fo_len.min(t.fo.clauses.len());
                let pushed = t.fo.clauses.len() - from;
                if pushed > 0 {
                    // COW: clones the indexes only while a snapshot
                    // still pins the previous compiled program.
                    let cp = Arc::make_mut(&mut c.cp);
                    for clause in &t.fo.clauses[from..] {
                        cp.push_clause(clause);
                    }
                }
                c.fo_len = t.fo.clauses.len();
                if pushed == 0 {
                    ArtifactProvenance::Current
                } else {
                    m.counter("folog.compile.clauses_pushed").add(pushed as u64);
                    ArtifactProvenance::Extended
                }
            }
            _ => {
                let mut cp = CompiledProgram::compile(&t.fo, builtin_symbols());
                cp.set_index_mode(self.options.fixpoint.index_mode);
                self.compiled_fo = Some(CompiledArtifact {
                    generation: t.generation,
                    fo_len: t.fo.clauses.len(),
                    cp: Arc::new(cp),
                });
                m.counter("folog.compile.builds").inc();
                ArtifactProvenance::Rebuilt
            }
        }
    }

    /// Brings the direct engine's program up to date. Never rebuilt:
    /// delta clauses are compiled and their ground facts merged into the
    /// clustered store (indexes are appended to, not rebuilt); the type
    /// hierarchy is refreshed from the cumulative program.
    fn ensure_direct(&mut self) -> ArtifactProvenance {
        let m = &self.options.obs.metrics;
        match &mut self.direct {
            Some(d) if d.epoch == self.epoch => ArtifactProvenance::Current,
            Some(d) => {
                // COW: clones the clustered store only while a snapshot
                // still pins the previous direct program.
                let dp = Arc::make_mut(&mut d.dp);
                dp.objects.set_epoch(self.epoch);
                dp.preds.set_epoch(self.epoch);
                dp.extend(&self.program, d.clauses);
                d.epoch = self.epoch;
                d.clauses = self.program.clauses.len();
                m.counter("engine.index.extends").inc();
                ArtifactProvenance::Extended
            }
            None => {
                let mut dp = DirectProgram::compile(&self.program, builtin_symbols());
                dp.preds.set_index_mode(self.options.fixpoint.index_mode);
                dp.objects.set_epoch(self.epoch);
                dp.preds.set_epoch(self.epoch);
                self.direct = Some(DirectArtifact {
                    epoch: self.epoch,
                    clauses: self.program.clauses.len(),
                    dp: Arc::new(dp),
                });
                m.counter("engine.index.builds").inc();
                ArtifactProvenance::Rebuilt
            }
        }
    }

    /// The saturated bottom-up model for a fixpoint strategy, current for
    /// this epoch. A cached *complete* model from an earlier epoch of the
    /// same translation generation is resumed — the fixpoint is seeded
    /// with the delta and run forward over the already-saturated store —
    /// instead of recomputed. Incomplete (budget-cut) models are served
    /// for the epoch they were computed in but never resumed.
    fn ensure_model(
        &mut self,
        fs: FixpointStrategy,
        opts: FixpointOptions,
    ) -> Result<ModelProvenance, SessionError> {
        self.ensure_compiled();
        let gen = self.translated.as_ref().expect("ensured").generation;
        let cp = &self.compiled_fo.as_ref().expect("ensured").cp;
        let rules = cp.rules.len();
        if self
            .models
            .get(&fs)
            .is_some_and(|m| m.epoch == self.epoch && m.generation == gen && m.rules == rules)
        {
            return Ok(ModelProvenance::Reused);
        }
        let prev = self.models.remove(&fs);
        let cp = &self.compiled_fo.as_ref().expect("ensured").cp;
        let (ev, provenance) = match prev {
            Some(m) if m.generation == gen && m.rules <= rules && m.ev.complete => {
                // COW resumption: reclaim the store when this session
                // holds the only reference; clone only while a published
                // snapshot still pins the old model.
                let seed = Arc::try_unwrap(m.ev).unwrap_or_else(|a| (*a).clone());
                (
                    folog::evaluate_delta(cp.as_ref(), seed, m.rules, opts)?,
                    ModelProvenance::Resumed,
                )
            }
            _ => (
                folog::evaluate(cp.as_ref(), opts)?,
                ModelProvenance::Computed,
            ),
        };
        self.models.insert(
            fs,
            ModelArtifact {
                epoch: self.epoch,
                generation: gen,
                rules,
                ev: Arc::new(ev),
            },
        );
        Ok(provenance)
    }

    /// Translates a query for the first-order strategies (positive goals
    /// only; see [`Session::query_ast`] for negation handling).
    pub fn translate_query(&self, q: &Query) -> Vec<FoAtom> {
        Transformer::new().query(q)
    }

    /// Parses and answers a query with the given strategy.
    pub fn query(&mut self, src: &str, strategy: Strategy) -> Result<Answers, SessionError> {
        let q = parse_query(src)?;
        self.query_ast(&q, strategy)
    }

    /// The effective budget for one engine invocation: the engine's own
    /// budget tightened by the session-wide budget, then bounded by the
    /// termination guard's defaults when the translated program shows
    /// skolem-function recursion (infinite least model).
    fn effective_budget(&mut self, engine_budget: &Budget) -> Budget {
        let mut b = engine_budget.merged(&self.options.budget);
        self.ensure_translated();
        if self.options.termination_guard && self.translated.as_ref().expect("ensured").may_diverge
        {
            if b.deadline.is_none() {
                b.deadline = Some(GUARD_DEADLINE);
            }
            if b.max_facts.is_none() {
                b.max_facts = Some(GUARD_MAX_FACTS);
            }
        }
        b
    }

    /// Answers an already-parsed query.
    ///
    /// Answers are memoized per `(epoch, strategy, canonicalized query)`;
    /// only complete answer sets enter the cache (a budget-cut partial
    /// result is recomputed on the next ask, which may have more budget
    /// left). Loading more program text bumps the epoch and thereby
    /// invalidates every cached answer.
    pub fn query_ast(&mut self, q: &Query, strategy: Strategy) -> Result<Answers, SessionError> {
        let key = (self.epoch, strategy, q.to_string());
        if let Some(hit) = self.answer_cache.get(&key) {
            self.cache_stats.hits += 1;
            self.options.obs.metrics.counter("session.cache.hits").inc();
            return Ok(hit.clone());
        }
        self.cache_stats.misses += 1;
        self.options
            .obs
            .metrics
            .counter("session.cache.misses")
            .inc();
        let answers = self.answer_uncached(q, strategy)?;
        if answers.complete {
            self.answer_cache.insert(key, answers.clone());
        }
        Ok(answers)
    }

    fn answer_uncached(&mut self, q: &Query, strategy: Strategy) -> Result<Answers, SessionError> {
        match strategy {
            Strategy::Direct => {
                let mut opts = self.options.direct.clone();
                opts.budget = self.effective_budget(&opts.budget);
                opts.obs = self.options.obs.clone();
                self.ensure_direct();
                let dp = &self.direct.as_ref().expect("ensured").dp;
                let r = DirectEngine::new(dp, opts).solve(q)?;
                Ok(Answers {
                    rows: r
                        .answers
                        .into_iter()
                        .map(|bindings| AnswerRow { bindings })
                        .collect(),
                    complete: r.complete,
                    degradation: r.degradation,
                })
            }
            Strategy::Sld => {
                let tr = Transformer::new();
                let mut aux = Vec::new();
                let mut counter = 0;
                let (goals, neg_goals) = tr.query_parts(q, &mut aux, &mut counter);
                let mut opts = self.options.sld.clone();
                opts.budget = self.effective_budget(&opts.budget);
                opts.obs = self.options.obs.clone();
                self.ensure_compiled();
                let art = self.compiled_fo.as_ref().expect("ensured");
                let r = if aux.is_empty() {
                    SldEngine::new(art.cp.as_ref(), opts).solve_with_negation(&goals, &neg_goals)?
                } else {
                    // Conjunction-shaped negated goals need their
                    // auxiliary clauses in the program: a COW overlay
                    // view extends the shared artifact without cloning
                    // or mutating it.
                    let mut view = ClauseOverlay::new(art.cp.as_ref());
                    for c in &aux {
                        view.push_clause(c);
                    }
                    SldEngine::new(&view, opts).solve_with_negation(&goals, &neg_goals)?
                };
                Ok(Answers {
                    rows: r
                        .answers
                        .into_iter()
                        .map(|bindings| AnswerRow { bindings })
                        .collect(),
                    complete: r.complete,
                    degradation: r.degradation,
                })
            }
            Strategy::BottomUpNaive | Strategy::BottomUpSemiNaive => {
                let tr = Transformer::new();
                let mut aux = Vec::new();
                let mut counter = 0;
                let (goals, neg_goals) = tr.query_parts(q, &mut aux, &mut counter);
                let fs = if strategy == Strategy::BottomUpNaive {
                    FixpointStrategy::Naive
                } else {
                    FixpointStrategy::SemiNaive
                };
                let mut opts = FixpointOptions {
                    strategy: fs,
                    ..self.options.fixpoint.clone()
                };
                opts.budget = self.effective_budget(&opts.budget);
                opts.obs = self.options.obs.clone();
                self.ensure_model(fs, opts.clone())?;
                if aux.is_empty() {
                    let ev = &self.models.get(&fs).expect("ensured").ev;
                    Ok(Answers {
                        rows: ev
                            .query_with_negation(&goals, &neg_goals)?
                            .into_iter()
                            .map(|bindings| AnswerRow {
                                bindings: bindings.into_iter().collect(),
                            })
                            .collect(),
                        complete: ev.complete,
                        degradation: ev.degradation.clone(),
                    })
                } else if self.models.get(&fs).expect("ensured").ev.complete {
                    // The auxiliary clauses for conjunction-shaped
                    // negated goals derive query-local `__naux…` facts
                    // that must not persist in the cached model. Against
                    // a *complete* model they are checked lazily per
                    // candidate answer — no model clone, no fixpoint
                    // resumption.
                    let ev = &self.models.get(&fs).expect("ensured").ev;
                    Ok(Answers {
                        rows: ev
                            .query_with_negation_aux(&goals, &neg_goals, &aux)?
                            .into_iter()
                            .map(|bindings| AnswerRow {
                                bindings: bindings.into_iter().collect(),
                            })
                            .collect(),
                        complete: ev.complete,
                        degradation: ev.degradation.clone(),
                    })
                } else {
                    // A budget-cut model cannot be resumed; re-evaluate
                    // over a COW overlay carrying the aux clauses — the
                    // shared compiled program stays untouched.
                    let art = self.compiled_fo.as_ref().expect("ensured");
                    let mut view = ClauseOverlay::new(art.cp.as_ref());
                    for c in &aux {
                        view.push_clause(c);
                    }
                    let ev = folog::evaluate(&view, opts)?;
                    Ok(Answers {
                        rows: ev
                            .query_with_negation(&goals, &neg_goals)?
                            .into_iter()
                            .map(|bindings| AnswerRow {
                                bindings: bindings.into_iter().collect(),
                            })
                            .collect(),
                        complete: ev.complete,
                        degradation: ev.degradation,
                    })
                }
            }
            Strategy::Tabled => {
                if q.has_negation() {
                    return Err(SessionError::Unsupported(
                        "tabled evaluation does not support negation".into(),
                    ));
                }
                let goals = self.translate_query(q);
                let mut opts = self.options.tabling.clone();
                opts.budget = self.effective_budget(&opts.budget);
                opts.obs = self.options.obs.clone();
                self.ensure_compiled();
                let cp = &self.compiled_fo.as_ref().expect("ensured").cp;
                let r = TabledEngine::new(cp.as_ref(), opts).solve(&goals)?;
                Ok(Answers {
                    rows: r
                        .answers
                        .into_iter()
                        .map(|bindings| AnswerRow { bindings })
                        .collect(),
                    complete: r.complete,
                    degradation: r.degradation,
                })
            }
            Strategy::Magic => {
                if q.has_negation() {
                    return Err(SessionError::Unsupported(
                        "magic sets do not support negation".into(),
                    ));
                }
                let goals = self.translate_query(q);
                let mut opts = self.options.fixpoint.clone();
                opts.budget = self.effective_budget(&opts.budget);
                opts.obs = self.options.obs.clone();
                // The magic rewrite is query-specific, so there is no
                // model to reuse — but the translated program itself is
                // borrowed, not cloned.
                self.ensure_translated();
                let fo = &self.translated.as_ref().expect("ensured").fo;
                let builtins = builtin_symbols().collect();
                let (answers, ev) = solve_magic(fo, &goals, &builtins, opts)?;
                Ok(Answers {
                    rows: answers
                        .into_iter()
                        .map(|bindings| AnswerRow {
                            bindings: bindings.into_iter().collect(),
                        })
                        .collect(),
                    complete: ev.complete,
                    degradation: ev.degradation,
                })
            }
        }
    }

    /// Whether the durable storage's circuit breaker is open (persistence
    /// suspended — see `clogic_store::RetryingStorage`). Always `false`
    /// for a non-persistent session or a storage without a breaker.
    pub fn persistence_breaker_open(&self) -> bool {
        self.durable.as_ref().is_some_and(|log| log.breaker_open())
    }

    /// Brings **every** strategy's artifacts up to the current epoch:
    /// the translation, the compiled first-order program, the direct
    /// engine's program, and the saturated bottom-up models for both
    /// fixpoint strategies. After `prepare` returns, any query without
    /// conjunction-shaped negation can be answered through the shared
    /// (`&self`) path [`Session::query_shared`] with no further artifact
    /// work — this is the writer's half of the writer/reader discipline
    /// the `clogic-serve` crate builds on: loads (and this call)
    /// serialize behind exclusive access, queries then fan out over the
    /// epoch-stamped artifacts from as many threads as the caller likes.
    ///
    /// Model saturation runs under the session budget (plus termination
    /// guard); a budget-cut model is kept and served — shared queries
    /// over it return partial answers with the usual [`Degradation`]
    /// report, exactly like the exclusive path.
    pub fn prepare(&mut self) -> Result<(), SessionError> {
        self.ensure_translated();
        self.ensure_compiled();
        self.ensure_direct();
        for fs in [FixpointStrategy::Naive, FixpointStrategy::SemiNaive] {
            let mut opts = FixpointOptions {
                strategy: fs,
                ..self.options.fixpoint.clone()
            };
            opts.budget = self.effective_budget(&opts.budget);
            opts.obs = self.options.obs.clone();
            self.ensure_model(fs, opts)?;
        }
        self.publish_snapshot();
        Ok(())
    }

    /// Bundles the (just-prepared) artifacts into an immutable
    /// [`SessionSnapshot`] and publishes it — one pointer swap — into
    /// the session's [`SnapshotCell`]. Readers that loaded an earlier
    /// snapshot keep it pinned; nothing they hold is mutated or freed.
    /// Only called on *successful* [`Session::prepare`]: a failed
    /// prepare leaves the previous snapshot serving.
    fn publish_snapshot(&mut self) {
        let t = self.translated.as_ref().expect("prepared");
        let c = self.compiled_fo.as_ref().expect("prepared");
        let d = self.direct.as_ref().expect("prepared");
        let naive = &self.models.get(&FixpointStrategy::Naive).expect("prepared").ev;
        let semi = &self
            .models
            .get(&FixpointStrategy::SemiNaive)
            .expect("prepared")
            .ev;
        let snap = Arc::new(SessionSnapshot {
            epoch: self.epoch,
            generation: t.generation,
            may_diverge: t.may_diverge,
            breaker_open: self.persistence_breaker_open(),
            skolem: self.skolem_state(),
            options: self.options.clone(),
            fo: Arc::clone(&t.fo),
            cp: Arc::clone(&c.cp),
            dp: Arc::clone(&d.dp),
            naive: Arc::clone(naive),
            semi: Arc::clone(semi),
            answers: Mutex::new(HashMap::new()),
        });
        self.options
            .obs
            .metrics
            .gauge("sessions.snapshot_epoch")
            .set(self.epoch);
        self.snapshots.publish(snap);
    }

    /// The session's snapshot publication cell. A serving layer clones
    /// this `Arc` once at startup and thereafter reads the current
    /// snapshot per query **without taking any session lock** — the
    /// heart of the lock-free read path.
    pub fn snapshot_cell(&self) -> Arc<SnapshotCell> {
        Arc::clone(&self.snapshots)
    }

    /// The most recently published snapshot, if [`Session::prepare`] has
    /// succeeded at least once.
    pub fn current_snapshot(&self) -> Option<Arc<SessionSnapshot>> {
        self.snapshots.load()
    }

    /// Parses and answers a query through the **shared-access** (`&self`)
    /// path: see [`Session::query_shared_ast`].
    pub fn query_shared(
        &self,
        src: &str,
        strategy: Strategy,
        extra: &Budget,
    ) -> Result<Answers, SessionError> {
        let q = parse_query(src)?;
        self.query_shared_ast(&q, strategy, extra)
    }

    /// Answers an already-parsed query **without mutating the session**,
    /// by delegating to the [`SessionSnapshot`] published by the last
    /// [`Session::prepare`]. Many threads may call this concurrently on
    /// `&Session` references (the type is `Sync`); answers are identical
    /// to [`Session::query_ast`] modulo the answer cache, which this
    /// path neither consults nor fills (a serving layer caches at its
    /// own tier — see [`SessionSnapshot::query_cached`]).
    ///
    /// `extra` is merged (tighter ceiling wins) into the effective
    /// budget — the seam through which a server threads per-request
    /// deadlines and cancellation into the engines.
    ///
    /// Returns [`SessionError::NotPrepared`] when no snapshot has been
    /// published **for the current epoch** — i.e. a load happened after
    /// the last `prepare`. A serving layer that would rather keep
    /// answering from the previous epoch while a load is in flight reads
    /// the [`SnapshotCell`] directly instead of going through here.
    pub fn query_shared_ast(
        &self,
        q: &Query,
        strategy: Strategy,
        extra: &Budget,
    ) -> Result<Answers, SessionError> {
        let snap = self
            .snapshots
            .load()
            .filter(|s| s.epoch == self.epoch)
            .ok_or(SessionError::NotPrepared("session snapshot"))?;
        snap.query_ast(q, strategy, extra)
    }

    /// Profiles one query under one strategy: per-phase wall time,
    /// artifact provenance, per-rule tuple counts, governor budget
    /// consumption, and the engine metrics of exactly this evaluation.
    ///
    /// The query is **evaluated for real** with a fresh metrics registry
    /// attached; the session's answer cache is bypassed (but
    /// [`QueryProfile::cache_would_hit`] reports whether a plain
    /// [`Session::query`] would have been served from it), and the result
    /// is *not* inserted into the cache — profiling leaves the session's
    /// caching behavior unchanged.
    ///
    /// ```
    /// use clogic::session::{Session, Strategy};
    /// use clogic::obs::Render;
    ///
    /// let mut s = Session::new();
    /// s.load("person: john[children => {bob, bill}].").unwrap();
    /// let profile = s
    ///     .explain("john[children => {bob, bill}]", Strategy::BottomUpSemiNaive)
    ///     .unwrap();
    /// assert_eq!(profile.answers, 1);
    /// assert!(profile.complete);
    /// println!("{}", profile.render_text()); // the REPL's `:explain`
    /// ```
    pub fn explain(&mut self, src: &str, strategy: Strategy) -> Result<QueryProfile, SessionError> {
        let t0 = Instant::now();
        let q = parse_query(src)?;
        let parse_us = t0.elapsed().as_micros() as u64;
        let cache_would_hit = self
            .answer_cache
            .contains_key(&(self.epoch, strategy, q.to_string()));

        // A fresh registry so the profile's metrics cover exactly this
        // evaluation; the session's own registry is untouched by it.
        let obs = Obs::new();
        let mut phases = vec![PhaseTiming {
            name: "parse",
            micros: parse_us,
        }];
        let mut artifacts = Vec::new();

        // Every strategy consults the translation (the direct engine only
        // for the termination-guard analysis), so time it as its own
        // phase.
        let t = Instant::now();
        let translated = self.ensure_translated();
        phases.push(PhaseTiming {
            name: "translate",
            micros: t.elapsed().as_micros() as u64,
        });
        artifacts.push(ArtifactNote {
            artifact: "translation",
            provenance: translated.to_string(),
        });

        let rules;
        let answers;
        let complete;
        let degradation;
        let eff_budget;
        let guard_injected;
        let eval_us;

        match strategy {
            Strategy::Direct => {
                let mut opts = self.options.direct.clone();
                let base = opts.budget.merged(&self.options.budget);
                opts.budget = self.effective_budget(&opts.budget);
                guard_injected = opts.budget.deadline != base.deadline
                    || opts.budget.max_facts != base.max_facts;
                eff_budget = opts.budget.clone();
                opts.obs = obs.clone();
                let t = Instant::now();
                let prov = self.ensure_direct();
                phases.push(PhaseTiming {
                    name: "compile",
                    micros: t.elapsed().as_micros() as u64,
                });
                artifacts.push(ArtifactNote {
                    artifact: "direct",
                    provenance: prov.to_string(),
                });
                let t = Instant::now();
                let dp = &self.direct.as_ref().expect("ensured").dp;
                let r = DirectEngine::new(dp, opts).solve(&q)?;
                eval_us = t.elapsed().as_micros() as u64;
                rules = rule_tuples(&r.per_rule, |i| {
                    self.program
                        .clauses
                        .get(i)
                        .map_or_else(|| format!("clause #{i}"), |c| c.to_string())
                });
                answers = r.answers.len();
                complete = r.complete;
                degradation = r.degradation;
            }
            Strategy::Sld => {
                let tr = Transformer::new();
                let mut aux = Vec::new();
                let mut counter = 0;
                let (goals, neg_goals) = tr.query_parts(&q, &mut aux, &mut counter);
                let mut opts = self.options.sld.clone();
                let base = opts.budget.merged(&self.options.budget);
                opts.budget = self.effective_budget(&opts.budget);
                guard_injected = opts.budget.deadline != base.deadline
                    || opts.budget.max_facts != base.max_facts;
                eff_budget = opts.budget.clone();
                opts.obs = obs.clone();
                let t = Instant::now();
                let prov = self.ensure_compiled();
                phases.push(PhaseTiming {
                    name: "compile",
                    micros: t.elapsed().as_micros() as u64,
                });
                artifacts.push(ArtifactNote {
                    artifact: "compiled",
                    provenance: prov.to_string(),
                });
                let t = Instant::now();
                let art = self.compiled_fo.as_ref().expect("ensured");
                let mut view = ClauseOverlay::new(art.cp.as_ref());
                for c in &aux {
                    view.push_clause(c);
                }
                let labels: Vec<String> =
                    (0..view.len()).map(|i| view.rule(i).to_string()).collect();
                let r = SldEngine::new(&view, opts).solve_with_negation(&goals, &neg_goals)?;
                eval_us = t.elapsed().as_micros() as u64;
                rules = rule_tuples(&r.per_rule, |i| {
                    labels
                        .get(i)
                        .cloned()
                        .unwrap_or_else(|| format!("rule #{i}"))
                });
                answers = r.answers.len();
                complete = r.complete;
                degradation = r.degradation;
            }
            Strategy::BottomUpNaive | Strategy::BottomUpSemiNaive => {
                let tr = Transformer::new();
                let mut aux = Vec::new();
                let mut counter = 0;
                let (goals, neg_goals) = tr.query_parts(&q, &mut aux, &mut counter);
                let fs = if strategy == Strategy::BottomUpNaive {
                    FixpointStrategy::Naive
                } else {
                    FixpointStrategy::SemiNaive
                };
                let mut opts = FixpointOptions {
                    strategy: fs,
                    ..self.options.fixpoint.clone()
                };
                let base = opts.budget.merged(&self.options.budget);
                opts.budget = self.effective_budget(&opts.budget);
                guard_injected = opts.budget.deadline != base.deadline
                    || opts.budget.max_facts != base.max_facts;
                eff_budget = opts.budget.clone();
                opts.obs = obs.clone();
                let t = Instant::now();
                self.ensure_compiled();
                let prov = self.ensure_model(fs, opts.clone())?;
                phases.push(PhaseTiming {
                    name: "model",
                    micros: t.elapsed().as_micros() as u64,
                });
                artifacts.push(ArtifactNote {
                    artifact: "model",
                    provenance: prov.to_string(),
                });
                let t = Instant::now();
                if aux.is_empty() {
                    let labels: Vec<String> = self
                        .compiled_fo
                        .as_ref()
                        .expect("ensured")
                        .cp
                        .rules
                        .iter()
                        .map(|r| r.to_string())
                        .collect();
                    let ev = &self.models.get(&fs).expect("ensured").ev;
                    let rows = ev.query_with_negation(&goals, &neg_goals)?;
                    eval_us = t.elapsed().as_micros() as u64;
                    rules = rule_tuples(&ev.stats.per_rule, |i| {
                        labels
                            .get(i)
                            .cloned()
                            .unwrap_or_else(|| format!("rule #{i}"))
                    });
                    answers = rows.len();
                    complete = ev.complete;
                    degradation = ev.degradation.clone();
                } else {
                    // Aux clauses for conjunction-shaped negated goals
                    // must not contaminate the cached model, so they ride
                    // a COW overlay. Unlike the plain query path (which
                    // checks them lazily), the profile wants honest
                    // per-rule counts, so the saturated model is cloned
                    // and resumed over the overlay for real.
                    let prev = self.models.get(&fs).expect("ensured");
                    let art = self.compiled_fo.as_ref().expect("ensured");
                    let base_rules = art.cp.rules.len();
                    let mut view = ClauseOverlay::new(art.cp.as_ref());
                    for c in &aux {
                        view.push_clause(c);
                    }
                    let labels: Vec<String> =
                        (0..view.len()).map(|i| view.rule(i).to_string()).collect();
                    let ev = if prev.ev.complete {
                        folog::evaluate_delta(&view, (*prev.ev).clone(), base_rules, opts)?
                    } else {
                        folog::evaluate(&view, opts)?
                    };
                    let rows = ev.query_with_negation(&goals, &neg_goals)?;
                    eval_us = t.elapsed().as_micros() as u64;
                    rules = rule_tuples(&ev.stats.per_rule, |i| {
                        labels
                            .get(i)
                            .cloned()
                            .unwrap_or_else(|| format!("rule #{i}"))
                    });
                    answers = rows.len();
                    complete = ev.complete;
                    degradation = ev.degradation;
                }
            }
            Strategy::Tabled => {
                if q.has_negation() {
                    return Err(SessionError::Unsupported(
                        "tabled evaluation does not support negation".into(),
                    ));
                }
                let goals = self.translate_query(&q);
                let mut opts = self.options.tabling.clone();
                let base = opts.budget.merged(&self.options.budget);
                opts.budget = self.effective_budget(&opts.budget);
                guard_injected = opts.budget.deadline != base.deadline
                    || opts.budget.max_facts != base.max_facts;
                eff_budget = opts.budget.clone();
                opts.obs = obs.clone();
                let t = Instant::now();
                let prov = self.ensure_compiled();
                phases.push(PhaseTiming {
                    name: "compile",
                    micros: t.elapsed().as_micros() as u64,
                });
                artifacts.push(ArtifactNote {
                    artifact: "compiled",
                    provenance: prov.to_string(),
                });
                let t = Instant::now();
                let cp = &self.compiled_fo.as_ref().expect("ensured").cp;
                let r = TabledEngine::new(cp.as_ref(), opts).solve(&goals)?;
                eval_us = t.elapsed().as_micros() as u64;
                let program_rules = cp.rules.len();
                let labels: Vec<String> = cp.rules.iter().map(|r| r.to_string()).collect();
                rules = rule_tuples(&r.per_rule, |i| {
                    if i == program_rules {
                        "__query (goal wrapper)".to_string()
                    } else {
                        labels
                            .get(i)
                            .cloned()
                            .unwrap_or_else(|| format!("rule #{i}"))
                    }
                });
                answers = r.answers.len();
                complete = r.complete;
                degradation = r.degradation;
            }
            Strategy::Magic => {
                if q.has_negation() {
                    return Err(SessionError::Unsupported(
                        "magic sets do not support negation".into(),
                    ));
                }
                let goals = self.translate_query(&q);
                let mut opts = self.options.fixpoint.clone();
                let base = opts.budget.merged(&self.options.budget);
                opts.budget = self.effective_budget(&opts.budget);
                guard_injected = opts.budget.deadline != base.deadline
                    || opts.budget.max_facts != base.max_facts;
                eff_budget = opts.budget.clone();
                opts.obs = obs.clone();
                let t = Instant::now();
                let fo = &self.translated.as_ref().expect("ensured").fo;
                let builtins = builtin_symbols().collect();
                let (rows, ev, labels) = solve_magic_labeled(fo, &goals, &builtins, opts)?;
                eval_us = t.elapsed().as_micros() as u64;
                rules = rule_tuples(&ev.stats.per_rule, |i| {
                    labels
                        .get(i)
                        .cloned()
                        .unwrap_or_else(|| format!("rule #{i}"))
                });
                answers = rows.len();
                complete = ev.complete;
                degradation = ev.degradation;
            }
        }

        phases.push(PhaseTiming {
            name: "evaluate",
            micros: eval_us,
        });
        Ok(QueryProfile {
            query: q.to_string(),
            strategy,
            epoch: self.epoch,
            cache_would_hit,
            phases,
            artifacts,
            rules,
            answers,
            complete,
            degradation,
            budget: BudgetUse {
                deadline_ms: eff_budget.deadline.map(|d| d.as_millis() as u64),
                max_steps: eff_budget.max_steps,
                max_facts: eff_budget.max_facts.map(|v| v as u64),
                max_memory_bytes: eff_budget.max_memory_bytes.map(|v| v as u64),
                guard_injected,
                elapsed_us: eval_us,
            },
            metrics: obs.metrics.snapshot(),
        })
    }
}

/// Zips per-rule tuple counts with rendered rule labels, dropping
/// zero-count rules.
/// Multiset-diffs two translated programs. `Some((removed, added))` when
/// every differing clause is a ground unit fact — the shape a saturated
/// model can be DRed-patched over — `None` when any rule or non-ground
/// clause changed (the model's derivational basis moved and it must be
/// recomputed).
fn fo_unit_diff(old: &FoProgram, new: &FoProgram) -> Option<(Vec<FoAtom>, Vec<FoAtom>)> {
    let mut counts: HashMap<&FoClause, i64> = HashMap::new();
    for c in &old.clauses {
        *counts.entry(c).or_default() += 1;
    }
    for c in &new.clauses {
        *counts.entry(c).or_default() -= 1;
    }
    let (mut removed, mut added) = (Vec::new(), Vec::new());
    for (c, n) in counts {
        if n == 0 {
            continue;
        }
        if !c.is_fact() || !c.head.is_ground() {
            return None;
        }
        let out = if n > 0 { &mut removed } else { &mut added };
        for _ in 0..n.unsigned_abs() {
            out.push(c.head.clone());
        }
    }
    Some((removed, added))
}

fn rule_tuples(per_rule: &[u64], label: impl Fn(usize) -> String) -> Vec<RuleTuples> {
    per_rule
        .iter()
        .enumerate()
        .filter(|&(_, &n)| n > 0)
        .map(|(i, &n)| RuleTuples {
            rule: label(i),
            tuples: n,
        })
        .collect()
}
