//! A high-level session API over the whole C-logic stack.
//!
//! A [`Session`] holds one C-logic program and answers queries through any
//! of the implemented evaluation strategies:
//!
//! * [`Strategy::Direct`] — direct resolution over complex objects
//!   (clustered store, order-sorted types, residuation);
//! * [`Strategy::Sld`] — Theorem 1 translation, then top-down SLD;
//! * [`Strategy::BottomUpNaive`] / [`Strategy::BottomUpSemiNaive`] —
//!   translation, least-model fixpoint, query matching;
//! * [`Strategy::Tabled`] — translation, tabled top-down evaluation;
//! * [`Strategy::Magic`] — translation, magic-sets rewrite, bottom-up.
//!
//! All strategies return the same answer sets (the executable content of
//! Theorem 1; property-tested in `tests/equivalence.rs`).
//!
//! ```
//! use clogic::session::{Session, Strategy};
//!
//! let mut s = Session::new();
//! s.load(
//!     "person: john[children => {bob, bill}].
//!      parent(X) :- person: X[children => Y].",
//! )
//! .unwrap();
//! let answers = s.query("parent(X)", Strategy::Direct).unwrap();
//! assert_eq!(answers.rows.len(), 1);
//! assert_eq!(answers.rows[0].get("X"), Some("john".to_string()));
//! ```

use clogic_core::fol::{FoAtom, FoProgram, FoTerm};
use clogic_core::optimize::Optimizer;
use clogic_core::program::Program;
use clogic_core::skolem::{auto_skolemize, SkolemReport};
use clogic_core::symbol::Symbol;
use clogic_core::transform::Transformer;
use clogic_core::Query;
use clogic_engine::{DirectEngine, DirectOptions, DirectProgram};
use clogic_parser::{parse_query, parse_source, ParseError};
use folog::builtins::builtin_symbols;
use folog::magic::solve_magic;
use folog::tabling::{TabledEngine, TablingOptions};
use folog::{
    Budget, CompiledProgram, Degradation, FixpointOptions, SldEngine, SldOptions,
    Strategy as FixpointStrategy,
};
use std::collections::BTreeMap;
use std::fmt;

/// An evaluation strategy.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Strategy {
    /// Direct resolution over complex objects (no translation).
    Direct,
    /// Translate to first-order clauses, run SLD resolution.
    Sld,
    /// Translate, compute the least model naively, match the query.
    BottomUpNaive,
    /// Translate, compute the least model semi-naively, match the query.
    BottomUpSemiNaive,
    /// Translate, run tabled top-down evaluation.
    Tabled,
    /// Translate, apply the magic-sets rewrite, evaluate bottom-up.
    Magic,
}

impl Strategy {
    /// All strategies, for cross-checking loops.
    pub const ALL: [Strategy; 6] = [
        Strategy::Direct,
        Strategy::Sld,
        Strategy::BottomUpNaive,
        Strategy::BottomUpSemiNaive,
        Strategy::Tabled,
        Strategy::Magic,
    ];
}

/// One answer row: query variable → ground term (display form available
/// via [`AnswerRow::get`]).
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct AnswerRow {
    /// Variable bindings, sorted by variable name.
    pub bindings: BTreeMap<Symbol, FoTerm>,
}

impl AnswerRow {
    /// The binding of a variable, rendered.
    pub fn get(&self, var: &str) -> Option<String> {
        self.bindings.get(&Symbol::new(var)).map(|t| t.to_string())
    }
}

impl fmt::Display for AnswerRow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.bindings.is_empty() {
            return write!(f, "yes");
        }
        for (i, (k, v)) in self.bindings.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{k} = {v}")?;
        }
        Ok(())
    }
}

/// The result of a query.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Answers {
    /// Sorted, deduplicated answer rows.
    pub rows: Vec<AnswerRow>,
    /// Whether the strategy explored its whole search space. Every
    /// strategy reports `false` when cut off by an engine limit or a
    /// [`Budget`] ceiling; the rows found so far are still returned.
    pub complete: bool,
    /// Why evaluation stopped early, when `complete` is false.
    pub degradation: Option<Degradation>,
}

impl Answers {
    /// True iff at least one answer.
    pub fn holds(&self) -> bool {
        !self.rows.is_empty()
    }

    /// The rows rendered, for golden tests.
    pub fn rendered(&self) -> Vec<String> {
        self.rows.iter().map(|r| r.to_string()).collect()
    }
}

/// Any error the session can raise.
#[derive(Debug)]
pub enum SessionError {
    /// Source failed to parse.
    Parse(ParseError),
    /// The strategy does not support a feature the program/query uses.
    Unsupported(String),
    /// A built-in raised an error.
    Builtin(folog::builtins::BuiltinError),
    /// Bottom-up evaluation failed.
    Eval(folog::bottom_up::EvalError),
    /// Tabled evaluation failed.
    Tabling(folog::tabling::TablingError),
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionError::Parse(e) => write!(f, "{e}"),
            SessionError::Unsupported(m) => write!(f, "unsupported: {m}"),
            SessionError::Builtin(e) => write!(f, "{e}"),
            SessionError::Eval(e) => write!(f, "{e}"),
            SessionError::Tabling(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for SessionError {}

impl From<ParseError> for SessionError {
    fn from(e: ParseError) -> Self {
        SessionError::Parse(e)
    }
}
impl From<folog::builtins::BuiltinError> for SessionError {
    fn from(e: folog::builtins::BuiltinError) -> Self {
        SessionError::Builtin(e)
    }
}
impl From<folog::bottom_up::EvalError> for SessionError {
    fn from(e: folog::bottom_up::EvalError) -> Self {
        SessionError::Eval(e)
    }
}
impl From<folog::tabling::TablingError> for SessionError {
    fn from(e: folog::tabling::TablingError) -> Self {
        SessionError::Tabling(e)
    }
}

/// Tuning knobs for a session.
#[derive(Clone, Debug)]
pub struct SessionOptions {
    /// Apply the §4 redundancy-elimination rules to the translated
    /// program (on by default).
    pub optimize_translation: bool,
    /// Automatically skolemize head-only object variables (§2.1 high-
    /// level interface; on by default).
    pub auto_skolemize: bool,
    /// Session-wide resource budget, merged (tighter ceiling wins, per
    /// axis) into every engine's own budget on each query. Unlimited by
    /// default; see [`SessionOptions::termination_guard`] for the safety
    /// net that kicks in on provably dangerous programs.
    pub budget: Budget,
    /// Statically analyse the translated program before each query and,
    /// when skolem-function recursion is detected (a recursive predicate
    /// whose head constructs non-ground function terms — the signature of
    /// an infinite least model, see `clogic_core::termination`), bound the
    /// effective budget with a default deadline and a small fact ceiling
    /// so no strategy can hang or build pathologically deep terms. On by
    /// default; the injected bounds never *loosen* an explicitly
    /// configured budget.
    pub termination_guard: bool,
    /// Options for the direct engine.
    pub direct: DirectOptions,
    /// Options for SLD.
    pub sld: SldOptions,
    /// Options for tabling.
    pub tabling: TablingOptions,
    /// Options for the bottom-up fixpoint (shared by the naive,
    /// semi-naive and magic strategies).
    ///
    /// Unlike the *library* default ([`FixpointOptions::default`], which
    /// is fully unbounded for programmatic callers that manage their own
    /// limits), the *session* default caps the fixpoint at 1,000,000
    /// facts and 100,000 iterations, so an unexpectedly large least model
    /// degrades into partial answers instead of consuming the machine.
    /// Set the fields to `None` to opt back into unbounded evaluation.
    pub fixpoint: FixpointOptions,
}

impl Default for SessionOptions {
    fn default() -> Self {
        SessionOptions {
            optimize_translation: true,
            auto_skolemize: true,
            budget: Budget::unlimited(),
            termination_guard: true,
            direct: DirectOptions::default(),
            sld: SldOptions::default(),
            tabling: TablingOptions::default(),
            fixpoint: FixpointOptions {
                max_facts: Some(1_000_000),
                max_iterations: Some(100_000),
                ..FixpointOptions::default()
            },
        }
    }
}

/// Deadline injected by the termination guard when the effective budget
/// has none and the program shows skolem-function recursion.
const GUARD_DEADLINE: std::time::Duration = std::time::Duration::from_secs(2);
/// Fact/answer ceiling injected alongside [`GUARD_DEADLINE`]. Deliberately
/// small: a flagged program nests its skolem terms one level deeper per
/// derived generation, and terms beyond a few thousand levels break the
/// recursive term operations (conversion, comparison, drop) regardless of
/// how fast the machine reached them — so the structural cap, not the
/// deadline, is what actually bounds term depth.
const GUARD_MAX_FACTS: usize = 2_000;

/// A loaded C-logic program plus every compiled artefact needed by the
/// strategies. Compiled artefacts are built lazily and cached.
#[derive(Default)]
pub struct Session {
    options: SessionOptions,
    program: Program,
    skolem_reports: Vec<SkolemReport>,
    // caches
    translated: Option<FoProgram>,
    compiled_fo: Option<CompiledProgram>,
    direct: Option<DirectProgram>,
}

impl Session {
    /// An empty session with default options.
    pub fn new() -> Session {
        Session::default()
    }

    /// An empty session with explicit options.
    pub fn with_options(options: SessionOptions) -> Session {
        Session {
            options,
            ..Session::default()
        }
    }

    /// Parses and loads more program text (cumulative). Queries embedded
    /// in the source are rejected — use [`Session::query`].
    pub fn load(&mut self, src: &str) -> Result<(), SessionError> {
        let parsed = parse_source(src)?;
        if !parsed.queries.is_empty() {
            return Err(SessionError::Parse(ParseError {
                message: "queries are not allowed in loaded sources; use Session::query".into(),
                line: 0,
                col: 0,
            }));
        }
        self.load_program(parsed.program);
        Ok(())
    }

    /// Loads an already-built program (cumulative).
    pub fn load_program(&mut self, mut p: Program) {
        if self.options.auto_skolemize {
            let (sk, mut reports) = auto_skolemize(&p);
            p = sk;
            self.skolem_reports.append(&mut reports);
        }
        self.program.subtype_decls.extend(p.subtype_decls);
        self.program.clauses.extend(p.clauses);
        self.invalidate();
    }

    /// The loaded program (after skolemization).
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// What was skolemized on load.
    pub fn skolem_reports(&self) -> &[SkolemReport] {
        &self.skolem_reports
    }

    fn invalidate(&mut self) {
        self.translated = None;
        self.compiled_fo = None;
        self.direct = None;
    }

    /// The translated first-order program (Theorem 1), optimized per the
    /// session options. Cached.
    pub fn translated(&mut self) -> &FoProgram {
        if self.translated.is_none() {
            let tr = Transformer::new();
            let fo = if self.options.optimize_translation {
                Optimizer::new(&self.program).optimized_program(&tr, &self.program)
            } else {
                tr.program(&self.program)
            };
            self.translated = Some(fo);
        }
        self.translated.as_ref().expect("just set")
    }

    fn compiled_fo(&mut self) -> &CompiledProgram {
        if self.compiled_fo.is_none() {
            let fo = self.translated().clone();
            self.compiled_fo = Some(CompiledProgram::compile(&fo, builtin_symbols()));
        }
        self.compiled_fo.as_ref().expect("just set")
    }

    fn direct_program(&mut self) -> &DirectProgram {
        if self.direct.is_none() {
            self.direct = Some(DirectProgram::compile(&self.program, builtin_symbols()));
        }
        self.direct.as_ref().expect("just set")
    }

    /// Translates a query for the first-order strategies (positive goals
    /// only; see [`Session::query_ast`] for negation handling).
    pub fn translate_query(&self, q: &Query) -> Vec<FoAtom> {
        Transformer::new().query(q)
    }

    /// Parses and answers a query with the given strategy.
    pub fn query(&mut self, src: &str, strategy: Strategy) -> Result<Answers, SessionError> {
        let q = parse_query(src)?;
        self.query_ast(&q, strategy)
    }

    /// The effective budget for one engine invocation: the engine's own
    /// budget tightened by the session-wide budget, then bounded by the
    /// termination guard's defaults when the translated program shows
    /// skolem-function recursion (infinite least model).
    fn effective_budget(&mut self, engine_budget: &Budget) -> Budget {
        let mut b = engine_budget.merged(&self.options.budget);
        if self.options.termination_guard
            && clogic_core::termination::may_diverge(self.translated())
        {
            if b.deadline.is_none() {
                b.deadline = Some(GUARD_DEADLINE);
            }
            if b.max_facts.is_none() {
                b.max_facts = Some(GUARD_MAX_FACTS);
            }
        }
        b
    }

    /// Answers an already-parsed query.
    pub fn query_ast(&mut self, q: &Query, strategy: Strategy) -> Result<Answers, SessionError> {
        match strategy {
            Strategy::Direct => {
                let mut opts = self.options.direct.clone();
                opts.budget = self.effective_budget(&opts.budget);
                let dp = self.direct_program();
                let r = DirectEngine::new(dp, opts).solve(q)?;
                Ok(Answers {
                    rows: r
                        .answers
                        .into_iter()
                        .map(|bindings| AnswerRow { bindings })
                        .collect(),
                    complete: r.complete,
                    degradation: r.degradation,
                })
            }
            Strategy::Sld => {
                let tr = Transformer::new();
                let mut aux = Vec::new();
                let mut counter = 0;
                let (goals, neg_goals) = tr.query_parts(q, &mut aux, &mut counter);
                let mut opts = self.options.sld.clone();
                opts.budget = self.effective_budget(&opts.budget);
                let r = if aux.is_empty() {
                    SldEngine::new(self.compiled_fo(), opts)
                        .solve_with_negation(&goals, &neg_goals)?
                } else {
                    // Conjunction-shaped negated goals need their
                    // auxiliary clauses in the program.
                    let mut cp = self.compiled_fo().clone();
                    for c in &aux {
                        cp.push_clause(c);
                    }
                    SldEngine::new(&cp, opts).solve_with_negation(&goals, &neg_goals)?
                };
                Ok(Answers {
                    rows: r
                        .answers
                        .into_iter()
                        .map(|bindings| AnswerRow { bindings })
                        .collect(),
                    complete: r.complete,
                    degradation: r.degradation,
                })
            }
            Strategy::BottomUpNaive | Strategy::BottomUpSemiNaive => {
                let tr = Transformer::new();
                let mut aux = Vec::new();
                let mut counter = 0;
                let (goals, neg_goals) = tr.query_parts(q, &mut aux, &mut counter);
                let strategy = if strategy == Strategy::BottomUpNaive {
                    FixpointStrategy::Naive
                } else {
                    FixpointStrategy::SemiNaive
                };
                let mut opts = FixpointOptions {
                    strategy,
                    ..self.options.fixpoint.clone()
                };
                opts.budget = self.effective_budget(&opts.budget);
                let ev = if aux.is_empty() {
                    folog::evaluate(self.compiled_fo(), opts)?
                } else {
                    let mut fo = self.translated().clone();
                    for c in aux {
                        fo.push(c);
                    }
                    let cp = CompiledProgram::compile(&fo, builtin_symbols());
                    folog::evaluate(&cp, opts)?
                };
                Ok(Answers {
                    rows: ev
                        .query_with_negation(&goals, &neg_goals)?
                        .into_iter()
                        .map(|bindings| AnswerRow {
                            bindings: bindings.into_iter().collect(),
                        })
                        .collect(),
                    complete: ev.complete,
                    degradation: ev.degradation,
                })
            }
            Strategy::Tabled => {
                if q.has_negation() {
                    return Err(SessionError::Unsupported(
                        "tabled evaluation does not support negation".into(),
                    ));
                }
                let goals = self.translate_query(q);
                let mut opts = self.options.tabling.clone();
                opts.budget = self.effective_budget(&opts.budget);
                let cp = self.compiled_fo();
                let r = TabledEngine::new(cp, opts).solve(&goals)?;
                Ok(Answers {
                    rows: r
                        .answers
                        .into_iter()
                        .map(|bindings| AnswerRow { bindings })
                        .collect(),
                    complete: r.complete,
                    degradation: r.degradation,
                })
            }
            Strategy::Magic => {
                if q.has_negation() {
                    return Err(SessionError::Unsupported(
                        "magic sets do not support negation".into(),
                    ));
                }
                let goals = self.translate_query(q);
                let mut opts = self.options.fixpoint.clone();
                opts.budget = self.effective_budget(&opts.budget);
                let fo = self.translated().clone();
                let builtins = builtin_symbols().collect();
                let (answers, ev) = solve_magic(&fo, &goals, &builtins, opts)?;
                Ok(Answers {
                    rows: answers
                        .into_iter()
                        .map(|bindings| AnswerRow {
                            bindings: bindings.into_iter().collect(),
                        })
                        .collect(),
                    complete: ev.complete,
                    degradation: ev.degradation,
                })
            }
        }
    }
}
